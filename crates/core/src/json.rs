//! Minimal JSON value model, writer and parser.
//!
//! The workspace's experiment pipeline emits one shared JSON results
//! schema (see `suu-bench`), and instances have a canonical JSON wire form
//! (see [`crate::SuuInstance::to_json`]). No serialization crate is
//! available offline, so this module provides the small, total subset of
//! JSON the workspace needs: objects, arrays, strings, bools, null, and
//! numbers split into unsigned integers (seeds, trial counts, makespans —
//! kept exact up to `u64::MAX`) and `f64`s.
//!
//! Writing is deterministic: object keys keep insertion order, floats use
//! Rust's shortest round-trip formatting. [`Json::to_canonical`] is the
//! content-addressing form: compact, with object keys sorted bytewise at
//! every level, so two values that differ only in key order (or
//! whitespace, once parsed) hash identically. Parsing is strict JSON:
//! nesting depth is bounded, the number grammar follows RFC 8259 (no
//! leading zeros, no bare `5.`/`1e`), numbers that overflow `f64` are
//! errors rather than infinities, and `\u` surrogate pairs combine (lone
//! surrogates are rejected).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer (kept exact; serialized without a decimal
    /// point).
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Empty object (builder entry point).
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Builder-style field insert; replaces an existing key.
    pub fn field(mut self, key: impl Into<String>, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => {
                let key = key.into();
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key, value));
                }
                self
            }
            _ => panic!("Json::field on a non-object"),
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a `u64` (only exact integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization (2-space indent, trailing newline).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    /// Canonical serialization for content addressing: compact, with
    /// object keys sorted **bytewise** at every nesting level (arrays
    /// keep their order — it is meaningful). Values that differ only in
    /// object key order produce identical canonical bytes, so hashing
    /// this form (e.g. with [`crate::fnv1a`]) yields a stable content
    /// address. Duplicate keys (possible in parsed input) are kept in
    /// first-occurrence order among themselves.
    pub fn to_canonical(&self) -> String {
        let mut out = String::new();
        self.write_canonical(&mut out);
        out
    }

    fn write_canonical(&self, out: &mut String) {
        match self {
            Json::Obj(fields) => {
                let mut order: Vec<usize> = (0..fields.len()).collect();
                order.sort_by(|&a, &b| fields[a].0.as_bytes().cmp(fields[b].0.as_bytes()));
                out.push('{');
                for (pos, &i) in order.iter().enumerate() {
                    if pos > 0 {
                        out.push(',');
                    }
                    write_escaped(out, &fields[i].0);
                    out.push(':');
                    fields[i].1.write_canonical(out);
                }
                out.push('}');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_canonical(out);
                }
                out.push(']');
            }
            other => other.write(out, None, 0),
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d)
                })
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d)
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // `{}` prints integral floats without a decimal point; keep the
        // float-ness visible in the wire form.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// Parse failure: what and where (byte offset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting depth [`parse`] accepts. The recursive
/// descent otherwise turns adversarially deep inputs (`[[[[…`) into a
/// stack-overflow abort instead of an `Err` — found by the round-trip
/// fuzz in `proptests.rs`.
pub const MAX_PARSE_DEPTH: usize = 128;

/// Parse a strict-JSON document (one value, trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_PARSE_DEPTH}")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let code = self.hex_escape()?;
                            match code {
                                // High surrogate: a low surrogate escape
                                // must follow; the pair combines into one
                                // supplementary-plane scalar.
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                        || self.bytes.get(self.pos + 2) != Some(&b'u')
                                    {
                                        return Err(self.err("unpaired high surrogate"));
                                    }
                                    self.pos += 2;
                                    let low = self.hex_escape()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    out.push(
                                        char::from_u32(combined)
                                            .expect("surrogate pair maps to a valid scalar"),
                                    );
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(self.err("unpaired low surrogate"));
                                }
                                _ => out.push(
                                    char::from_u32(code)
                                        .expect("non-surrogate BMP code point is a valid scalar"),
                                ),
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The cursor only ever stops
                    // on ASCII or scalar boundaries, so this cannot fail.
                    let c = std::str::from_utf8(&self.bytes[self.pos..])
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Read the 4 hex digits of a `\uXXXX` escape. On entry `pos` is at
    /// the `u`; on exit it is at the last hex digit (the caller's shared
    /// `pos += 1` then steps past it).
    fn hex_escape(&mut self) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    /// RFC 8259 number grammar: `-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?`.
    /// Leading zeros, a bare sign, `5.` and `1e` are rejected; so are
    /// finite-looking numbers whose `f64` value overflows to infinity
    /// (JSON has no `Inf`, and silently round-tripping to `null` would
    /// corrupt content-addressed documents).
    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digit_run();
        match int_digits {
            0 => return Err(self.err("expected digit")),
            1 => {}
            _ if self.bytes[self.pos - int_digits] == b'0' => {
                return Err(self.err("leading zero in number"))
            }
            _ => {}
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if self.digit_run() == 0 {
                return Err(self.err("expected digit after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digit_run() == 0 {
                return Err(self.err("expected digit in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        let value: f64 = text
            .parse()
            .map_err(|_| self.err(format!("bad number {text:?}")))?;
        if !value.is_finite() {
            return Err(self.err(format!("number {text:?} overflows f64")));
        }
        Ok(Json::Num(value))
    }

    fn digit_run(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let doc = Json::obj()
            .field("name", "suu")
            .field("trials", 100u64)
            .field("mean", 3.5)
            .field("ok", true)
            .field("tags", vec!["a", "b"]);
        assert_eq!(doc.get("name").unwrap().as_str(), Some("suu"));
        assert_eq!(doc.get("trials").unwrap().as_u64(), Some(100));
        assert_eq!(doc.get("mean").unwrap().as_f64(), Some(3.5));
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("tags").unwrap().as_array().unwrap().len(), 2);
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn field_replaces_existing_key() {
        let doc = Json::obj().field("k", 1u64).field("k", 2u64);
        assert_eq!(doc.get("k").unwrap().as_u64(), Some(2));
        assert_eq!(doc.to_compact(), r#"{"k":2}"#);
    }

    #[test]
    fn compact_and_pretty_roundtrip() {
        let doc = Json::obj()
            .field("a", vec![1u64, 2, 3])
            .field("b", Json::obj().field("nested", Json::Null))
            .field("s", "line\n\"quote\"");
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc, "from {text}");
        }
    }

    #[test]
    fn integers_stay_exact() {
        let big = u64::MAX;
        let doc = Json::obj().field("seed", big);
        let parsed = parse(&doc.to_compact()).unwrap();
        assert_eq!(parsed.get("seed").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn floats_keep_float_form() {
        assert_eq!(Json::Num(2.0).to_compact(), "2.0");
        assert_eq!(parse("2.0").unwrap(), Json::Num(2.0));
        assert_eq!(parse("2").unwrap(), Json::UInt(2));
        assert_eq!(parse("-3.25e2").unwrap(), Json::Num(-325.0));
        assert_eq!(parse("-7").unwrap(), Json::Num(-7.0));
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn parse_errors_carry_offsets() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        let err = parse("[1, x]").unwrap_err();
        assert!(err.offset >= 4, "offset {}", err.offset);
    }

    #[test]
    fn unicode_and_escapes() {
        let doc = Json::Str("héllo → \u{1}".to_string());
        let text = doc.to_compact();
        assert_eq!(parse(&text).unwrap(), doc);
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".to_string()));
    }

    #[test]
    fn surrogate_pairs_combine_and_lone_surrogates_error() {
        // Escaped surrogate pairs combine into one supplementary scalar.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".to_string())
        );
        assert_eq!(
            parse(r#""\ud834\udd1e""#).unwrap(),
            Json::Str("\u{1D11E}".to_string())
        );
        // Raw (unescaped) astral characters also pass through.
        assert_eq!(parse("\"😀\"").unwrap(), Json::Str("😀".to_string()));
        for bad in [
            r#""\ud83d""#,       // high with nothing after
            r#""\ud83dx""#,      // high followed by a plain char
            r#""\ud83d\n""#,     // high followed by a non-\u escape
            r#""\ud83d\ud83d""#, // high followed by another high
            r#""\ude00""#,       // lone low
            r#""\u12""#,         // truncated hex
            r#""\uzzzz""#,       // non-hex
        ] {
            assert!(parse(bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let mut evil = String::new();
        for _ in 0..100_000 {
            evil.push('[');
        }
        let err = parse(&evil).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Same guard on objects.
        let mut evil = String::new();
        for _ in 0..100_000 {
            evil.push_str("{\"k\":");
        }
        assert!(parse(&evil).is_err());
        // Depth *within* the limit stays accepted — including after a
        // deep subtree closed (depth is released on the way out).
        let depth = MAX_PARSE_DEPTH - 1;
        let fine = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        assert!(parse(&fine).is_ok());
        let two_arms = format!(
            "[{}1{},{}2{}]",
            "[".repeat(depth - 1),
            "]".repeat(depth - 1),
            "[".repeat(depth - 1),
            "]".repeat(depth - 1)
        );
        assert!(parse(&two_arms).is_ok());
    }

    #[test]
    fn strict_number_grammar() {
        for bad in [
            "-", "5.", ".5", "1e", "1e+", "01", "-01", "00", "1.2e", "+1", "1e309", "-1e309",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad}");
        }
        for (text, value) in [
            ("0", Json::UInt(0)),
            ("-0", Json::Num(-0.0)),
            ("0.5", Json::Num(0.5)),
            ("10", Json::UInt(10)),
            ("1e2", Json::Num(100.0)),
            ("1E-2", Json::Num(0.01)),
            ("-3.25e2", Json::Num(-325.0)),
        ] {
            assert_eq!(parse(text).unwrap(), value, "{text}");
        }
    }

    #[test]
    fn canonical_sorts_keys_at_every_level() {
        let a = Json::obj()
            .field("zeta", 1u64)
            .field("alpha", Json::obj().field("b", 2u64).field("a", 3u64))
            .field("mid", vec![Json::obj().field("y", 4u64).field("x", 5u64)]);
        let b = Json::obj()
            .field("mid", vec![Json::obj().field("x", 5u64).field("y", 4u64)])
            .field("alpha", Json::obj().field("a", 3u64).field("b", 2u64))
            .field("zeta", 1u64);
        assert_eq!(a.to_canonical(), b.to_canonical());
        assert_eq!(
            a.to_canonical(),
            r#"{"alpha":{"a":3,"b":2},"mid":[{"x":5,"y":4}],"zeta":1}"#
        );
        // Canonical text is itself valid JSON that parses to the sorted
        // tree (and re-canonicalizes to the same bytes).
        let reparsed = parse(&a.to_canonical()).unwrap();
        assert_eq!(reparsed.to_canonical(), a.to_canonical());
        // Arrays keep their order — they are sequences, not sets.
        assert_ne!(
            Json::Arr(vec![Json::UInt(1), Json::UInt(2)]).to_canonical(),
            Json::Arr(vec![Json::UInt(2), Json::UInt(1)]).to_canonical()
        );
    }
}
