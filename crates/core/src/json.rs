//! Minimal JSON value model, writer and parser.
//!
//! The workspace's experiment pipeline emits one shared JSON results
//! schema (see `suu-bench`), and instances have a canonical JSON wire form
//! (see [`crate::SuuInstance::to_json`]). No serialization crate is
//! available offline, so this module provides the small, total subset of
//! JSON the workspace needs: objects, arrays, strings, bools, null, and
//! numbers split into unsigned integers (seeds, trial counts, makespans —
//! kept exact up to `u64::MAX`) and `f64`s.
//!
//! Writing is deterministic: object keys keep insertion order, floats use
//! Rust's shortest round-trip formatting. Parsing is strict JSON.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer (kept exact; serialized without a decimal
    /// point).
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Empty object (builder entry point).
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Builder-style field insert; replaces an existing key.
    pub fn field(mut self, key: impl Into<String>, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => {
                let key = key.into();
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key, value));
                }
                self
            }
            _ => panic!("Json::field on a non-object"),
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a `u64` (only exact integers).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization (2-space indent, trailing newline).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d)
                })
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d)
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // `{}` prints integral floats without a decimal point; keep the
        // float-ness visible in the wire form.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

/// Parse failure: what and where (byte offset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Description of the problem.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a strict-JSON document (one value, trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by the schema;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The cursor only ever stops
                    // on ASCII or scalar boundaries, so this cannot fail.
                    let c = std::str::from_utf8(&self.bytes[self.pos..])
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_accessors() {
        let doc = Json::obj()
            .field("name", "suu")
            .field("trials", 100u64)
            .field("mean", 3.5)
            .field("ok", true)
            .field("tags", vec!["a", "b"]);
        assert_eq!(doc.get("name").unwrap().as_str(), Some("suu"));
        assert_eq!(doc.get("trials").unwrap().as_u64(), Some(100));
        assert_eq!(doc.get("mean").unwrap().as_f64(), Some(3.5));
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("tags").unwrap().as_array().unwrap().len(), 2);
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn field_replaces_existing_key() {
        let doc = Json::obj().field("k", 1u64).field("k", 2u64);
        assert_eq!(doc.get("k").unwrap().as_u64(), Some(2));
        assert_eq!(doc.to_compact(), r#"{"k":2}"#);
    }

    #[test]
    fn compact_and_pretty_roundtrip() {
        let doc = Json::obj()
            .field("a", vec![1u64, 2, 3])
            .field("b", Json::obj().field("nested", Json::Null))
            .field("s", "line\n\"quote\"");
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc, "from {text}");
        }
    }

    #[test]
    fn integers_stay_exact() {
        let big = u64::MAX;
        let doc = Json::obj().field("seed", big);
        let parsed = parse(&doc.to_compact()).unwrap();
        assert_eq!(parsed.get("seed").unwrap().as_u64(), Some(big));
    }

    #[test]
    fn floats_keep_float_form() {
        assert_eq!(Json::Num(2.0).to_compact(), "2.0");
        assert_eq!(parse("2.0").unwrap(), Json::Num(2.0));
        assert_eq!(parse("2").unwrap(), Json::UInt(2));
        assert_eq!(parse("-3.25e2").unwrap(), Json::Num(-325.0));
        assert_eq!(parse("-7").unwrap(), Json::Num(-7.0));
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn parse_errors_carry_offsets() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        let err = parse("[1, x]").unwrap_err();
        assert!(err.offset >= 4, "offset {}", err.offset);
    }

    #[test]
    fn unicode_and_escapes() {
        let doc = Json::Str("héllo → \u{1}".to_string());
        let text = doc.to_compact();
        assert_eq!(parse(&text).unwrap(), doc);
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".to_string()));
    }
}
