//! Precedence structures and eligibility tracking.

use crate::BitSet;
use suu_dag::{ChainSet, Dag, Forest};

/// The precedence constraints of an SUU instance.
///
/// The paper's algorithm families target specific shapes, so the shape is
/// kept explicit rather than collapsed into a generic DAG; `to_dag` gives
/// the uniform view when needed (e.g. by the execution engine).
#[derive(Debug, Clone)]
pub enum Precedence {
    /// No constraints (SUU-I).
    Independent,
    /// Disjoint chains (SUU-C).
    Chains(ChainSet),
    /// A directed forest of in- or out-trees (SUU-T).
    Forest(Forest),
    /// An arbitrary DAG (no approximation algorithm in the paper; supported
    /// by the engine, the exact-OPT baseline and the naive policies).
    Dag(Dag),
}

impl Precedence {
    /// Materialize as a [`Dag`] over `n` jobs.
    pub fn to_dag(&self, n: usize) -> Dag {
        match self {
            Precedence::Independent => Dag::new(n),
            Precedence::Chains(cs) => cs.to_dag(),
            Precedence::Forest(f) => f.to_dag(),
            Precedence::Dag(d) => d.clone(),
        }
    }

    /// Number of jobs implied by the structure, if it pins one down.
    pub fn num_jobs(&self) -> Option<usize> {
        match self {
            Precedence::Independent => None,
            Precedence::Chains(cs) => Some(cs.num_jobs()),
            Precedence::Forest(f) => Some(f.num_vertices()),
            Precedence::Dag(d) => Some(d.num_vertices()),
        }
    }

    /// `true` if there are no precedence edges.
    pub fn is_independent(&self) -> bool {
        match self {
            Precedence::Independent => true,
            Precedence::Chains(cs) => cs.max_chain_len() <= 1,
            Precedence::Forest(f) => f.to_dag().num_edges() == 0,
            Precedence::Dag(d) => d.num_edges() == 0,
        }
    }
}

/// Incremental eligibility: a job is *eligible* when all its predecessors
/// have completed (paper §2). `O(1)` amortized per completion event.
#[derive(Debug, Clone)]
pub struct EligibilityTracker {
    /// Remaining (uncompleted) jobs.
    remaining: BitSet,
    /// Eligible and uncompleted jobs.
    eligible: BitSet,
    /// Outstanding predecessor count per job.
    pending_preds: Vec<u32>,
    /// Successor lists.
    succ: Vec<Vec<u32>>,
    /// Completion events so far (the *decision epoch* counter: the
    /// eligible set changes exactly when a job completes, so event-driven
    /// engines and policies key their caches off this).
    epoch: u64,
}

impl EligibilityTracker {
    /// Tracker with every job uncompleted. Panics if `dag` is cyclic.
    pub fn new(dag: &Dag) -> Self {
        assert!(dag.is_acyclic(), "precedence graph has a cycle");
        let n = dag.num_vertices();
        let pending_preds = dag.indegrees();
        let mut eligible = BitSet::new(n);
        for j in 0..n as u32 {
            if pending_preds[j as usize] == 0 {
                eligible.insert(j);
            }
        }
        let succ = (0..n as u32).map(|v| dag.successors(v).to_vec()).collect();
        EligibilityTracker {
            remaining: BitSet::full(n),
            eligible,
            pending_preds,
            succ,
            epoch: 0,
        }
    }

    /// Jobs not yet completed.
    #[inline]
    pub fn remaining(&self) -> &BitSet {
        &self.remaining
    }

    /// Jobs eligible to run right now.
    #[inline]
    pub fn eligible(&self) -> &BitSet {
        &self.eligible
    }

    /// `true` once every job has completed.
    #[inline]
    pub fn all_done(&self) -> bool {
        self.remaining.is_empty()
    }

    /// Number of uncompleted jobs.
    #[inline]
    pub fn num_remaining(&self) -> usize {
        self.remaining.len()
    }

    /// Number of completion events so far. Increments exactly when the
    /// eligible set changes, so two observations with equal epochs are
    /// guaranteed to see identical remaining/eligible sets — the hook the
    /// event-driven engine (and caching policies) build on.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Mark job `j` complete, unlocking any successors whose predecessors
    /// are now all done. Returns the newly eligible jobs.
    ///
    /// Panics (debug) if `j` was already complete or not eligible — the
    /// engine never completes an ineligible job.
    pub fn complete(&mut self, j: u32) -> Vec<u32> {
        debug_assert!(self.remaining.contains(j), "job {j} completed twice");
        debug_assert!(self.eligible.contains(j), "ineligible job {j} completed");
        self.epoch += 1;
        self.remaining.remove(j);
        self.eligible.remove(j);
        let mut unlocked = Vec::new();
        for k in 0..self.succ[j as usize].len() {
            let v = self.succ[j as usize][k];
            self.pending_preds[v as usize] -= 1;
            if self.pending_preds[v as usize] == 0 {
                self.eligible.insert(v);
                unlocked.push(v);
            }
        }
        unlocked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_all_eligible() {
        let t = EligibilityTracker::new(&Dag::new(4));
        assert_eq!(t.eligible().len(), 4);
        assert!(!t.all_done());
    }

    #[test]
    fn chain_unlocks_in_order() {
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2)]);
        let mut t = EligibilityTracker::new(&dag);
        assert_eq!(t.eligible().iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(t.epoch(), 0);
        assert_eq!(t.complete(0), vec![1]);
        assert_eq!(t.epoch(), 1);
        assert_eq!(t.complete(1), vec![2]);
        assert_eq!(t.complete(2), Vec::<u32>::new());
        assert_eq!(t.epoch(), 3);
        assert!(t.all_done());
    }

    #[test]
    fn diamond_needs_both_parents() {
        let dag = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut t = EligibilityTracker::new(&dag);
        t.complete(0);
        assert!(t.eligible().contains(1) && t.eligible().contains(2));
        assert!(!t.eligible().contains(3));
        t.complete(1);
        assert!(!t.eligible().contains(3), "3 still blocked by 2");
        assert_eq!(t.complete(2), vec![3]);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn double_complete_panics() {
        let mut t = EligibilityTracker::new(&Dag::new(2));
        t.complete(0);
        t.complete(0);
    }

    #[test]
    fn precedence_to_dag_shapes() {
        assert_eq!(Precedence::Independent.to_dag(5).num_edges(), 0);
        assert!(Precedence::Independent.is_independent());
        let cs = ChainSet::new(3, vec![vec![0, 1], vec![2]]).unwrap();
        let p = Precedence::Chains(cs);
        assert_eq!(p.to_dag(3).num_edges(), 1);
        assert_eq!(p.num_jobs(), Some(3));
        assert!(!p.is_independent());
        let singles = Precedence::Chains(ChainSet::singletons(3));
        assert!(singles.is_independent());
    }
}
