//! Precedence structures and eligibility tracking.

use crate::BitSet;
use suu_dag::{ChainSet, Dag, Forest};

/// The precedence constraints of an SUU instance.
///
/// The paper's algorithm families target specific shapes, so the shape is
/// kept explicit rather than collapsed into a generic DAG; `to_dag` gives
/// the uniform view when needed (e.g. by the execution engine).
#[derive(Debug, Clone)]
pub enum Precedence {
    /// No constraints (SUU-I).
    Independent,
    /// Disjoint chains (SUU-C).
    Chains(ChainSet),
    /// A directed forest of in- or out-trees (SUU-T).
    Forest(Forest),
    /// An arbitrary DAG (no approximation algorithm in the paper; supported
    /// by the engine, the exact-OPT baseline and the naive policies).
    Dag(Dag),
}

impl Precedence {
    /// Materialize as a [`Dag`] over `n` jobs.
    pub fn to_dag(&self, n: usize) -> Dag {
        match self {
            Precedence::Independent => Dag::new(n),
            Precedence::Chains(cs) => cs.to_dag(),
            Precedence::Forest(f) => f.to_dag(),
            Precedence::Dag(d) => d.clone(),
        }
    }

    /// Number of jobs implied by the structure, if it pins one down.
    pub fn num_jobs(&self) -> Option<usize> {
        match self {
            Precedence::Independent => None,
            Precedence::Chains(cs) => Some(cs.num_jobs()),
            Precedence::Forest(f) => Some(f.num_vertices()),
            Precedence::Dag(d) => Some(d.num_vertices()),
        }
    }

    /// `true` if there are no precedence edges.
    pub fn is_independent(&self) -> bool {
        match self {
            Precedence::Independent => true,
            Precedence::Chains(cs) => cs.max_chain_len() <= 1,
            Precedence::Forest(f) => f.to_dag().num_edges() == 0,
            Precedence::Dag(d) => d.num_edges() == 0,
        }
    }
}

/// The immutable half of eligibility tracking: successor lists and initial
/// indegrees of the precedence DAG.
///
/// Batched trial execution runs many simultaneous executions of one
/// instance; each needs its own remaining/eligible sets but they all share
/// this topology, which is computed (and allocated) once per batch rather
/// than once per trial. [`EligibilityTracker`] is the single-trial
/// convenience wrapper bundling a topology with one [`EligibilityState`].
#[derive(Debug, Clone)]
pub struct EligibilityTopology {
    /// Successor lists per job.
    succ: Vec<Vec<u32>>,
    /// Indegree per job (pending-predecessor count of a fresh state).
    indegrees: Vec<u32>,
    /// Jobs with no predecessors (the initial eligible set).
    initial_eligible: BitSet,
    /// Number of jobs.
    n: usize,
}

impl EligibilityTopology {
    /// Topology of `dag`. Panics if `dag` is cyclic.
    pub fn new(dag: &Dag) -> Self {
        assert!(dag.is_acyclic(), "precedence graph has a cycle");
        let n = dag.num_vertices();
        let indegrees = dag.indegrees();
        let mut initial_eligible = BitSet::new(n);
        for j in 0..n as u32 {
            if indegrees[j as usize] == 0 {
                initial_eligible.insert(j);
            }
        }
        let succ = (0..n as u32).map(|v| dag.successors(v).to_vec()).collect();
        EligibilityTopology {
            succ,
            indegrees,
            initial_eligible,
            n,
        }
    }

    /// Number of jobs.
    #[inline]
    pub fn num_jobs(&self) -> usize {
        self.n
    }

    /// A fresh per-trial state: every job uncompleted, sources eligible.
    pub fn new_state(&self) -> EligibilityState {
        EligibilityState {
            remaining: BitSet::full(self.n),
            eligible: self.initial_eligible.clone(),
            pending_preds: self.indegrees.clone(),
            epoch: 0,
        }
    }

    /// Reset `state` to exactly what [`EligibilityTopology::new_state`]
    /// returns, reusing its allocations — the batch engine recycles trial
    /// states across chunks so steady-state execution allocates nothing.
    /// `state` must have been created by this topology (same job count).
    pub fn reset_state(&self, state: &mut EligibilityState) {
        assert_eq!(
            state.pending_preds.len(),
            self.n,
            "state belongs to a different topology"
        );
        state.remaining.fill_all();
        state.eligible.copy_from(&self.initial_eligible);
        state.pending_preds.copy_from_slice(&self.indegrees);
        state.epoch = 0;
    }
}

/// The mutable half of eligibility tracking: one trial's remaining and
/// eligible sets plus pending-predecessor counts. Operations take the
/// shared [`EligibilityTopology`] explicitly, so a batch of trials holds
/// B states against one topology.
#[derive(Debug, Clone)]
pub struct EligibilityState {
    /// Remaining (uncompleted) jobs.
    remaining: BitSet,
    /// Eligible and uncompleted jobs.
    eligible: BitSet,
    /// Outstanding predecessor count per job.
    pending_preds: Vec<u32>,
    /// Completion events so far (the *decision epoch* counter: the
    /// eligible set changes exactly when a job completes, so event-driven
    /// engines and policies key their caches off this).
    epoch: u64,
}

impl EligibilityState {
    /// Jobs not yet completed.
    #[inline]
    pub fn remaining(&self) -> &BitSet {
        &self.remaining
    }

    /// Jobs eligible to run right now.
    #[inline]
    pub fn eligible(&self) -> &BitSet {
        &self.eligible
    }

    /// `true` once every job has completed.
    #[inline]
    pub fn all_done(&self) -> bool {
        self.remaining.is_empty()
    }

    /// Number of uncompleted jobs.
    #[inline]
    pub fn num_remaining(&self) -> usize {
        self.remaining.len()
    }

    /// Number of completion events so far. Increments exactly when the
    /// eligible set changes, so two observations with equal epochs are
    /// guaranteed to see identical remaining/eligible sets — the hook the
    /// event-driven engine (and caching policies) build on.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Mark job `j` complete under `topo`, unlocking any successors whose
    /// predecessors are now all done. Allocation-free (batch hot path);
    /// use [`EligibilityTracker::complete`] to collect the unlocked jobs.
    ///
    /// Panics (debug) if `j` was already complete or not eligible — the
    /// engine never completes an ineligible job.
    pub fn complete(&mut self, topo: &EligibilityTopology, j: u32) {
        self.complete_impl(topo, j, |_| {});
    }

    /// The one copy of the completion/unlock rule; `on_unlock` is called
    /// for each newly eligible successor (a no-op on the allocation-free
    /// path, a collector in [`EligibilityTracker::complete`]).
    fn complete_impl(
        &mut self,
        topo: &EligibilityTopology,
        j: u32,
        mut on_unlock: impl FnMut(u32),
    ) {
        debug_assert!(self.remaining.contains(j), "job {j} completed twice");
        debug_assert!(self.eligible.contains(j), "ineligible job {j} completed");
        self.epoch += 1;
        self.remaining.remove(j);
        self.eligible.remove(j);
        for &v in &topo.succ[j as usize] {
            self.pending_preds[v as usize] -= 1;
            if self.pending_preds[v as usize] == 0 {
                self.eligible.insert(v);
                on_unlock(v);
            }
        }
    }
}

/// Incremental eligibility: a job is *eligible* when all its predecessors
/// have completed (paper §2). `O(1)` amortized per completion event.
///
/// One topology + one state, for single-trial execution. Batched execution
/// holds many [`EligibilityState`]s against one shared
/// [`EligibilityTopology`] instead.
#[derive(Debug, Clone)]
pub struct EligibilityTracker {
    topo: EligibilityTopology,
    state: EligibilityState,
}

impl EligibilityTracker {
    /// Tracker with every job uncompleted. Panics if `dag` is cyclic.
    pub fn new(dag: &Dag) -> Self {
        let topo = EligibilityTopology::new(dag);
        let state = topo.new_state();
        EligibilityTracker { topo, state }
    }

    /// Jobs not yet completed.
    #[inline]
    pub fn remaining(&self) -> &BitSet {
        self.state.remaining()
    }

    /// Jobs eligible to run right now.
    #[inline]
    pub fn eligible(&self) -> &BitSet {
        self.state.eligible()
    }

    /// `true` once every job has completed.
    #[inline]
    pub fn all_done(&self) -> bool {
        self.state.all_done()
    }

    /// Number of uncompleted jobs.
    #[inline]
    pub fn num_remaining(&self) -> usize {
        self.state.num_remaining()
    }

    /// Number of completion events so far; see [`EligibilityState::epoch`].
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.state.epoch()
    }

    /// Mark job `j` complete, unlocking any successors whose predecessors
    /// are now all done. Returns the newly eligible jobs.
    ///
    /// Panics (debug) if `j` was already complete or not eligible — the
    /// engine never completes an ineligible job.
    pub fn complete(&mut self, j: u32) -> Vec<u32> {
        let mut unlocked = Vec::new();
        self.state
            .complete_impl(&self.topo, j, |v| unlocked.push(v));
        unlocked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_all_eligible() {
        let t = EligibilityTracker::new(&Dag::new(4));
        assert_eq!(t.eligible().len(), 4);
        assert!(!t.all_done());
    }

    #[test]
    fn chain_unlocks_in_order() {
        let dag = Dag::from_edges(3, &[(0, 1), (1, 2)]);
        let mut t = EligibilityTracker::new(&dag);
        assert_eq!(t.eligible().iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(t.epoch(), 0);
        assert_eq!(t.complete(0), vec![1]);
        assert_eq!(t.epoch(), 1);
        assert_eq!(t.complete(1), vec![2]);
        assert_eq!(t.complete(2), Vec::<u32>::new());
        assert_eq!(t.epoch(), 3);
        assert!(t.all_done());
    }

    #[test]
    fn diamond_needs_both_parents() {
        let dag = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut t = EligibilityTracker::new(&dag);
        t.complete(0);
        assert!(t.eligible().contains(1) && t.eligible().contains(2));
        assert!(!t.eligible().contains(3));
        t.complete(1);
        assert!(!t.eligible().contains(3), "3 still blocked by 2");
        assert_eq!(t.complete(2), vec![3]);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn double_complete_panics() {
        let mut t = EligibilityTracker::new(&Dag::new(2));
        t.complete(0);
        t.complete(0);
    }

    #[test]
    fn shared_topology_runs_independent_trial_states() {
        // Two trials over one topology complete in different orders; each
        // state evolves exactly as a dedicated tracker would.
        let dag = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let topo = EligibilityTopology::new(&dag);
        assert_eq!(topo.num_jobs(), 4);
        let mut a = topo.new_state();
        let mut b = topo.new_state();
        let mut reference = EligibilityTracker::new(&dag);

        a.complete(&topo, 0);
        a.complete(&topo, 1);
        reference.complete(0);
        reference.complete(1);
        assert_eq!(a.remaining(), reference.remaining());
        assert_eq!(a.eligible(), reference.eligible());
        assert_eq!(a.epoch(), reference.epoch());

        // Trial b is untouched by trial a's progress.
        assert_eq!(b.num_remaining(), 4);
        assert_eq!(b.epoch(), 0);
        b.complete(&topo, 0);
        b.complete(&topo, 2);
        assert!(b.eligible().contains(1));
        assert!(!b.eligible().contains(3), "3 still blocked by 1 in b");
        assert!(!a.eligible().contains(1), "1 already done in a");
    }

    #[test]
    fn reset_state_equals_new_state() {
        let dag = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let topo = EligibilityTopology::new(&dag);
        let mut s = topo.new_state();
        s.complete(&topo, 0);
        s.complete(&topo, 1);
        topo.reset_state(&mut s);
        let fresh = topo.new_state();
        assert_eq!(s.remaining(), fresh.remaining());
        assert_eq!(s.eligible(), fresh.eligible());
        assert_eq!(s.pending_preds, fresh.pending_preds);
        assert_eq!(s.epoch(), 0);
        // A reset state evolves identically to a fresh one.
        s.complete(&topo, 0);
        assert!(s.eligible().contains(1) && s.eligible().contains(2));
    }

    #[test]
    fn precedence_to_dag_shapes() {
        assert_eq!(Precedence::Independent.to_dag(5).num_edges(), 0);
        assert!(Precedence::Independent.is_independent());
        let cs = ChainSet::new(3, vec![vec![0, 1], vec![2]]).unwrap();
        let p = Precedence::Chains(cs);
        assert_eq!(p.to_dag(3).num_edges(), 1);
        assert_eq!(p.num_jobs(), Some(3));
        assert!(!p.is_independent());
        let singles = Precedence::Chains(ChainSet::singletons(3));
        assert!(singles.is_independent());
    }
}
