//! Dinic's maximum-flow algorithm with integer capacities.
//!
//! Standard adjacency-arena representation: edges are stored in a flat
//! vector, each forward edge immediately followed by its residual twin, so
//! `e ^ 1` is the reverse edge. Complexity `O(V^2 E)` in general and
//! `O(E sqrt(V))` on the unit-ish bipartite-style networks the rounding
//! lemmas build — far below the LP solve cost in practice.

/// "Infinite" capacity: large enough to never bind, small enough that the
/// sum of all edge capacities cannot overflow `u64`.
pub const CAP_INF: u64 = u64::MAX / 4;

/// Identifier of a forward edge, as returned by [`FlowNetwork::add_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(usize);

#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: u64,
}

/// A directed flow network with integer capacities.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    edges: Vec<Edge>,
    /// Original capacity of each forward edge (for flow extraction).
    orig_cap: Vec<u64>,
    adj: Vec<Vec<usize>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl FlowNetwork {
    /// Create a network with `n` nodes (indices `0..n`).
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            edges: Vec::new(),
            orig_cap: Vec::new(),
            adj: vec![Vec::new(); n],
            level: vec![-1; n],
            iter: vec![0; n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Add one more node, returning its index.
    pub fn add_node(&mut self) -> usize {
        self.adj.push(Vec::new());
        self.level.push(-1);
        self.iter.push(0);
        self.adj.len() - 1
    }

    /// Add a directed edge `from -> to` with capacity `cap`.
    ///
    /// Returns an [`EdgeId`] usable with [`FlowNetwork::flow_on`] after a
    /// max-flow computation.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: u64) -> EdgeId {
        assert!(
            from < self.adj.len() && to < self.adj.len(),
            "node out of range"
        );
        assert!(cap <= CAP_INF, "capacity exceeds CAP_INF");
        let id = self.edges.len();
        self.edges.push(Edge { to, cap });
        self.edges.push(Edge { to: from, cap: 0 });
        self.orig_cap.push(cap);
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        EdgeId(id)
    }

    /// Flow routed through a forward edge (valid after [`Self::max_flow`]).
    pub fn flow_on(&self, e: EdgeId) -> u64 {
        // Flow = original capacity - residual capacity.
        self.orig_cap[e.0 / 2] - self.edges[e.0].cap
    }

    fn bfs(&mut self, s: usize, t: usize) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &eid in &self.adj[u] {
                let e = &self.edges[eid];
                if e.cap > 0 && self.level[e.to] < 0 {
                    self.level[e.to] = self.level[u] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        self.level[t] >= 0
    }

    fn dfs(&mut self, u: usize, t: usize, pushed: u64) -> u64 {
        if u == t {
            return pushed;
        }
        while self.iter[u] < self.adj[u].len() {
            let eid = self.adj[u][self.iter[u]];
            let (to, cap) = {
                let e = &self.edges[eid];
                (e.to, e.cap)
            };
            if cap > 0 && self.level[to] == self.level[u] + 1 {
                let d = self.dfs(to, t, pushed.min(cap));
                if d > 0 {
                    self.edges[eid].cap -= d;
                    self.edges[eid ^ 1].cap += d;
                    return d;
                }
            }
            self.iter[u] += 1;
        }
        0
    }

    /// Compute the maximum `s`→`t` flow. Residual capacities are updated in
    /// place; call [`Self::flow_on`] afterwards for per-edge flows.
    ///
    /// Calling this twice continues from the current residual state (useful
    /// for incremental capacity additions), matching Dinic semantics.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        assert!(
            s < self.adj.len() && t < self.adj.len(),
            "node out of range"
        );
        assert_ne!(s, t, "source equals sink");
        let mut total = 0u64;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let f = self.dfs(s, t, CAP_INF);
                if f == 0 {
                    break;
                }
                total += f;
            }
        }
        total
    }

    /// Nodes reachable from `s` in the residual graph — the source side of a
    /// minimum cut after [`Self::max_flow`]. Used by tests to verify
    /// max-flow/min-cut optimality.
    pub fn min_cut_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(u) = stack.pop() {
            for &eid in &self.adj[u] {
                let e = &self.edges[eid];
                if e.cap > 0 && !seen[e.to] {
                    seen[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
        seen
    }

    /// Sum of original capacities of edges crossing from `side` to its
    /// complement. With `side = min_cut_side(s)` this equals the max flow.
    pub fn cut_capacity(&self, side: &[bool]) -> u64 {
        let mut cap = 0u64;
        for (fid, &oc) in self.orig_cap.iter().enumerate() {
            let eid = fid * 2;
            // Forward edge eid: from = edges[eid ^ 1].to
            let from = self.edges[eid ^ 1].to;
            let to = self.edges[eid].to;
            if side[from] && !side[to] {
                cap = cap.saturating_add(oc);
            }
        }
        cap
    }
}
