//! Tests for max-flow and matching, including property-based checks of the
//! max-flow/min-cut certificate and brute-force matching comparisons.

use crate::{BipartiteMatcher, FlowNetwork, CAP_INF};
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::SmallRng;

#[test]
fn single_edge() {
    let mut net = FlowNetwork::new(2);
    let e = net.add_edge(0, 1, 7);
    assert_eq!(net.max_flow(0, 1), 7);
    assert_eq!(net.flow_on(e), 7);
}

#[test]
fn series_bottleneck() {
    let mut net = FlowNetwork::new(3);
    net.add_edge(0, 1, 10);
    net.add_edge(1, 2, 4);
    assert_eq!(net.max_flow(0, 2), 4);
}

#[test]
fn parallel_paths_add() {
    let mut net = FlowNetwork::new(4);
    net.add_edge(0, 1, 3);
    net.add_edge(1, 3, 3);
    net.add_edge(0, 2, 5);
    net.add_edge(2, 3, 5);
    assert_eq!(net.max_flow(0, 3), 8);
}

#[test]
fn classic_clrs_example() {
    // CLRS figure 26.6-style network, max flow 23.
    let mut net = FlowNetwork::new(6);
    let (s, v1, v2, v3, v4, t) = (0, 1, 2, 3, 4, 5);
    net.add_edge(s, v1, 16);
    net.add_edge(s, v2, 13);
    net.add_edge(v1, v3, 12);
    net.add_edge(v2, v1, 4);
    net.add_edge(v2, v4, 14);
    net.add_edge(v3, v2, 9);
    net.add_edge(v3, t, 20);
    net.add_edge(v4, v3, 7);
    net.add_edge(v4, t, 4);
    assert_eq!(net.max_flow(s, t), 23);
}

#[test]
fn disconnected_sink_zero_flow() {
    let mut net = FlowNetwork::new(3);
    net.add_edge(0, 1, 5);
    assert_eq!(net.max_flow(0, 2), 0);
}

#[test]
fn infinite_capacity_edges_do_not_overflow() {
    let mut net = FlowNetwork::new(4);
    net.add_edge(0, 1, 9);
    net.add_edge(1, 2, CAP_INF);
    net.add_edge(2, 3, 11);
    assert_eq!(net.max_flow(0, 3), 9);
}

#[test]
fn per_edge_flow_conservation() {
    let mut net = FlowNetwork::new(5);
    let e: Vec<_> = vec![
        net.add_edge(0, 1, 4),
        net.add_edge(0, 2, 3),
        net.add_edge(1, 3, 2),
        net.add_edge(1, 2, 2),
        net.add_edge(2, 3, 5),
        net.add_edge(3, 4, 6),
    ];
    let f = net.max_flow(0, 4);
    assert_eq!(f, 6);
    // Conservation at node 1: in = out.
    assert_eq!(net.flow_on(e[0]), net.flow_on(e[2]) + net.flow_on(e[3]));
    // Conservation at node 3.
    assert_eq!(net.flow_on(e[2]) + net.flow_on(e[4]), net.flow_on(e[5]));
}

#[test]
fn add_node_grows_network() {
    let mut net = FlowNetwork::new(2);
    let mid = net.add_node();
    assert_eq!(net.num_nodes(), 3);
    net.add_edge(0, mid, 2);
    net.add_edge(mid, 1, 2);
    assert_eq!(net.max_flow(0, 1), 2);
}

#[test]
fn min_cut_certificate_matches_flow() {
    let mut net = FlowNetwork::new(6);
    net.add_edge(0, 1, 10);
    net.add_edge(0, 2, 10);
    net.add_edge(1, 3, 4);
    net.add_edge(1, 4, 8);
    net.add_edge(2, 4, 9);
    net.add_edge(3, 5, 10);
    net.add_edge(4, 3, 6);
    net.add_edge(4, 5, 10);
    let f = net.max_flow(0, 5);
    let side = net.min_cut_side(0);
    assert!(side[0] && !side[5]);
    assert_eq!(net.cut_capacity(&side), f);
}

fn random_network(seed: u64, n: usize, extra_edges: usize) -> FlowNetwork {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut net = FlowNetwork::new(n);
    // A guaranteed s->t path plus random edges.
    for i in 0..n - 1 {
        net.add_edge(i, i + 1, rng.random_range(0..20));
    }
    for _ in 0..extra_edges {
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        if a != b {
            net.add_edge(a, b, rng.random_range(0..15));
        }
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn maxflow_equals_mincut_on_random_graphs(seed in 0u64..5_000, n in 3usize..12, extra in 0usize..20) {
        let mut net = random_network(seed, n, extra);
        let f = net.max_flow(0, n - 1);
        let side = net.min_cut_side(0);
        prop_assert!(side[0]);
        prop_assert!(!side[n - 1]);
        prop_assert_eq!(net.cut_capacity(&side), f);
    }

    #[test]
    fn matching_never_exceeds_side_sizes(seed in 0u64..5_000, nl in 1usize..8, nr in 1usize..8, ne in 0usize..24) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = BipartiteMatcher::new(nl, nr);
        for _ in 0..ne {
            m.add_edge(rng.random_range(0..nl), rng.random_range(0..nr));
        }
        let k = m.solve();
        prop_assert!(k <= nl.min(nr));
        // Matching is consistent: pairs agree in both directions.
        for (u, v) in m.pairs() {
            prop_assert_eq!(m.partner_of_left(u), Some(v));
            prop_assert_eq!(m.partner_of_right(v), Some(u));
        }
        prop_assert_eq!(m.pairs().len(), k);
    }

    #[test]
    fn matching_matches_bruteforce(seed in 0u64..2_000, nl in 1usize..6, nr in 1usize..6, density in 0.1f64..0.9) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges = vec![];
        let mut m = BipartiteMatcher::new(nl, nr);
        for u in 0..nl {
            for v in 0..nr {
                if rng.random_bool(density) {
                    edges.push((u, v));
                    m.add_edge(u, v);
                }
            }
        }
        let hk = m.solve();

        // Brute force: try all subsets of edges (tiny sizes).
        let mut best = 0usize;
        let ne = edges.len().min(20);
        for mask in 0u32..(1u32 << ne) {
            let mut used_l = 0u32;
            let mut used_r = 0u32;
            let mut ok = true;
            let mut count = 0;
            for (k, &(u, v)) in edges.iter().take(ne).enumerate() {
                if mask >> k & 1 == 1 {
                    if used_l >> u & 1 == 1 || used_r >> v & 1 == 1 {
                        ok = false;
                        break;
                    }
                    used_l |= 1 << u;
                    used_r |= 1 << v;
                    count += 1;
                }
            }
            if ok {
                best = best.max(count);
            }
        }
        if edges.len() <= 20 {
            prop_assert_eq!(hk, best);
        }
    }
}

#[test]
fn perfect_matching_on_complete_bipartite() {
    let n = 10;
    let mut m = BipartiteMatcher::new(n, n);
    for u in 0..n {
        for v in 0..n {
            m.add_edge(u, v);
        }
    }
    assert_eq!(m.solve(), n);
}

#[test]
fn hall_violation_limits_matching() {
    // Three left vertices all pointing to one right vertex.
    let mut m = BipartiteMatcher::new(3, 3);
    m.add_edge(0, 1);
    m.add_edge(1, 1);
    m.add_edge(2, 1);
    assert_eq!(m.solve(), 1);
}

#[test]
fn empty_matcher() {
    let mut m = BipartiteMatcher::new(0, 0);
    assert_eq!(m.solve(), 0);
    assert!(m.pairs().is_empty());
}
