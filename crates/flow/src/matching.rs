//! Hopcroft–Karp maximum bipartite matching.
//!
//! Used by the stochastic-scheduling timetable construction (Appendix C):
//! the Birkhoff-style decomposition repeatedly extracts a perfect matching
//! on the bipartite support graph of the remaining fractional assignment.
//! `O(E sqrt(V))`.

use std::collections::VecDeque;

const NIL: usize = usize::MAX;
const INF: u32 = u32::MAX;

/// Maximum-cardinality matching on a bipartite graph with `nl` left and
/// `nr` right vertices.
#[derive(Debug, Clone)]
pub struct BipartiteMatcher {
    nl: usize,
    nr: usize,
    adj: Vec<Vec<usize>>,
    /// `match_l[u]` = right partner of left `u`, or `NIL`.
    match_l: Vec<usize>,
    /// `match_r[v]` = left partner of right `v`, or `NIL`.
    match_r: Vec<usize>,
    dist: Vec<u32>,
}

impl BipartiteMatcher {
    /// Empty graph with the given side sizes.
    pub fn new(nl: usize, nr: usize) -> Self {
        BipartiteMatcher {
            nl,
            nr,
            adj: vec![Vec::new(); nl],
            match_l: vec![NIL; nl],
            match_r: vec![NIL; nr],
            dist: vec![INF; nl],
        }
    }

    /// Add an edge between left vertex `u` and right vertex `v`.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.nl && v < self.nr, "vertex out of range");
        self.adj[u].push(v);
    }

    fn bfs(&mut self) -> bool {
        let mut queue = VecDeque::new();
        for u in 0..self.nl {
            if self.match_l[u] == NIL {
                self.dist[u] = 0;
                queue.push_back(u);
            } else {
                self.dist[u] = INF;
            }
        }
        let mut found = false;
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                let w = self.match_r[v];
                if w == NIL {
                    found = true;
                } else if self.dist[w] == INF {
                    self.dist[w] = self.dist[u] + 1;
                    queue.push_back(w);
                }
            }
        }
        found
    }

    fn dfs(&mut self, u: usize) -> bool {
        for k in 0..self.adj[u].len() {
            let v = self.adj[u][k];
            let w = self.match_r[v];
            if w == NIL || (self.dist[w] == self.dist[u] + 1 && self.dfs(w)) {
                self.match_l[u] = v;
                self.match_r[v] = u;
                return true;
            }
        }
        self.dist[u] = INF;
        false
    }

    /// Compute a maximum matching; returns its cardinality.
    pub fn solve(&mut self) -> usize {
        let mut matched = 0;
        while self.bfs() {
            for u in 0..self.nl {
                if self.match_l[u] == NIL && self.dfs(u) {
                    matched += 1;
                }
            }
        }
        matched
    }

    /// Right partner of left vertex `u` after [`Self::solve`].
    pub fn partner_of_left(&self, u: usize) -> Option<usize> {
        match self.match_l[u] {
            NIL => None,
            v => Some(v),
        }
    }

    /// Left partner of right vertex `v` after [`Self::solve`].
    pub fn partner_of_right(&self, v: usize) -> Option<usize> {
        match self.match_r[v] {
            NIL => None,
            u => Some(u),
        }
    }

    /// Pairs `(left, right)` of the current matching.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        self.match_l
            .iter()
            .enumerate()
            .filter_map(|(u, &v)| (v != NIL).then_some((u, v)))
            .collect()
    }
}
