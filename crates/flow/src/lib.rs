//! # suu-flow — network-flow substrate
//!
//! The SPAA'08 SUU rounding lemmas (Lemma 2 and Lemma 6) convert fractional
//! LP solutions into integral machine-to-job assignments by routing an
//! integral maximum flow through a three-layer network, relying on the
//! Ford–Fulkerson integrality theorem. The stochastic-scheduling appendix
//! additionally needs repeated perfect matchings to decompose a preemptive
//! timetable into machine-disjoint slices.
//!
//! This crate provides both primitives, built from scratch:
//!
//! * [`FlowNetwork`] — integer-capacity max-flow via **Dinic's algorithm**
//!   (BFS level graph + blocking-flow DFS), with per-edge flow extraction.
//! * [`BipartiteMatcher`] — maximum bipartite matching via
//!   **Hopcroft–Karp**.
//!
//! Capacities are `u64`; `CAP_INF` models the paper's "infinite capacity"
//! edges without overflow.
//!
//! ## Example
//!
//! ```
//! use suu_flow::FlowNetwork;
//!
//! let mut net = FlowNetwork::new(4);
//! let (s, a, b, t) = (0, 1, 2, 3);
//! net.add_edge(s, a, 3);
//! net.add_edge(s, b, 2);
//! net.add_edge(a, t, 2);
//! net.add_edge(b, t, 3);
//! net.add_edge(a, b, 5);
//! assert_eq!(net.max_flow(s, t), 5);
//! ```

mod dinic;
mod matching;

pub use dinic::{EdgeId, FlowNetwork, CAP_INF};
pub use matching::BipartiteMatcher;

#[cfg(test)]
mod tests;
