//! The rule engine: repo-specific invariants as deny-by-default
//! diagnostics over the token stream.
//!
//! Every rule guards something the test suite can only check
//! probabilistically but a token walk can check totally: byte-identical
//! replay (no unordered iteration or wall clocks near schema'd output),
//! serving robustness (no bare prints or panic paths in the serve
//! tier), and protocol hygiene (schema ids only from the registry,
//! no silent narrowing in key-range math).
//!
//! ## Suppression
//!
//! A finding is suppressed by a directive comment on the same line or
//! the line above (the marker must start the comment):
//!
//! ```text
//! // <lint-name>: allow(<rule>, "<justification>")
//! ```
//!
//! where `<lint-name>` is `suu-lint`. The justification string is
//! mandatory — an allow without one is itself a diagnostic
//! (`allow-justification`), as is a malformed directive
//! (`allow-syntax`) or one naming a rule that does not exist
//! (`allow-unknown-rule`). Directive diagnostics cannot be suppressed.

use crate::lexer::{lex, string_content, Token, TokenKind};

/// The directive marker. Built at runtime so the engine's own source
/// never contains a comment starting with it.
fn marker() -> String {
    format!("{}-{}:", "suu", "lint")
}

/// A rule's identity and documentation, for `--list-rules` and README.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    pub name: &'static str,
    /// One-line contract, shown by `--list-rules`.
    pub summary: &'static str,
    /// Where it applies, shown by `--list-rules`.
    pub scope: &'static str,
}

/// Every rule the engine knows, in diagnostic order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "unordered-collection",
        summary: "HashMap/HashSet (nondeterministic iteration) in a schema-producing file; \
                  use BTreeMap/BTreeSet/WordMap or sort before emitting",
        scope: "schema-producing files (registry users + json.rs/report.rs/cache.rs/router.rs), \
                non-test code",
    },
    RuleInfo {
        name: "wall-clock",
        summary: "SystemTime/Instant::now in a canonical-JSON or cache-key module; \
                  clocks must never reach canonical bytes",
        scope: "core/json.rs, core/hash.rs, serve/cache.rs, bench/report.rs, non-test code",
    },
    RuleInfo {
        name: "float-format",
        summary: "precision float formatting (fixed-precision or scientific format specs) \
                  outside the shortest-repr json writer; schema'd floats must round-trip \
                  bitwise",
        scope: "schema-producing files except core/json.rs, non-test code",
    },
    RuleInfo {
        name: "serve-print",
        summary: "bare println!/eprintln!/print!/eprint! in the serve tier; use elog! \
                  (EPIPE-tolerant) or a framed response",
        scope: "crates/serve non-test code",
    },
    RuleInfo {
        name: "serve-panic",
        summary: "panic!/unreachable!/todo!/unimplemented! in the serve tier; return a \
                  framed error instead",
        scope: "crates/serve non-test code",
    },
    RuleInfo {
        name: "serve-unwrap",
        summary: ".unwrap()/.expect() in the serve tier; handle the Result or recover \
                  (PoisonError::into_inner)",
        scope: "crates/serve non-test code",
    },
    RuleInfo {
        name: "blocking-net-read",
        summary: "TcpStream used in a file that never sets a read timeout or nonblocking \
                  mode; a stalled peer must not wedge the tier",
        scope: "crates/serve non-test code, per file",
    },
    RuleInfo {
        name: "schema-literal",
        summary: "schema id string literal outside the registry; cite suu_core::schemas::* \
                  so version bumps cannot drift",
        scope: "all files except core/src/schemas.rs",
    },
    RuleInfo {
        name: "narrowing-cast",
        summary: "`as u64`/`as usize`/`as u32` in key-range/ownership math; use u128 or \
                  checked conversions",
        scope: "serve/router.rs and serve/cache.rs, non-test code",
    },
    RuleInfo {
        name: "allow-syntax",
        summary: "malformed allow directive",
        scope: "directive comments",
    },
    RuleInfo {
        name: "allow-justification",
        summary: "allow directive without a justification string",
        scope: "directive comments",
    },
    RuleInfo {
        name: "allow-unknown-rule",
        summary: "allow directive naming a rule that does not exist",
        scope: "directive comments",
    },
];

/// `true` iff `name` is a registered rule.
pub fn rule_exists(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
    /// `Some(justification)` when an allow directive suppressed it.
    pub allowed: Option<String>,
}

impl Finding {
    /// `file:line:rule: message` — the human diagnostic form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed allow directive.
#[derive(Debug)]
struct Directive {
    /// Lines it covers: the comment's own line span plus the next line.
    first_line: u32,
    last_line: u32,
    rule: String,
    justification: Option<String>,
}

/// How the path classifies for scoping rules. Paths are
/// workspace-relative with forward slashes.
struct FileClass {
    serve: bool,
    test: bool,
    key_math: bool,
    time_sensitive: bool,
    registry: bool,
    /// Fixed members of the schema-producing set; extended at lint time
    /// by "references the schema registry".
    schema_listed: bool,
}

fn classify(path: &str) -> FileClass {
    let test = path.contains("/tests/")
        || path.starts_with("tests/")
        || path.ends_with("/tests.rs")
        || path.ends_with("/proptests.rs");
    FileClass {
        serve: path.starts_with("crates/serve/src/"),
        test,
        key_math: path == "crates/serve/src/router.rs" || path == "crates/serve/src/cache.rs",
        time_sensitive: matches!(
            path,
            "crates/core/src/json.rs"
                | "crates/core/src/hash.rs"
                | "crates/serve/src/cache.rs"
                | "crates/bench/src/report.rs"
        ),
        registry: path == "crates/core/src/schemas.rs",
        schema_listed: matches!(
            path,
            "crates/core/src/json.rs"
                | "crates/bench/src/report.rs"
                | "crates/serve/src/cache.rs"
                | "crates/serve/src/router.rs"
                | "crates/serve/src/service.rs"
        ),
    }
}

/// Lint one file. `path` must be workspace-relative with `/` separators.
pub fn lint_file(path: &str, src: &str) -> Vec<Finding> {
    let tokens = lex(src);
    let class = classify(path);
    let mut directives = Vec::new();
    let mut findings = Vec::new();

    parse_directives(path, src, &tokens, &mut directives, &mut findings);

    // Significant tokens (code only) with their index into `tokens`.
    let sig: Vec<&Token> = tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let test_lines = cfg_test_regions(src, &sig);
    let in_test = |line: u32| class.test || test_lines.iter().any(|r| r.0 <= line && line <= r.1);

    // A file is schema-producing if listed or if it cites the registry
    // (`schemas::X`), which every producer does after the migration.
    let cites_registry = sig.windows(3).any(|w| {
        ident(w[0], src) == Some("schemas") && punct(w[1], ':', src) && punct(w[2], ':', src)
    });
    let schema_producing = !class.registry && (class.schema_listed || cites_registry);

    let mut push = |line: u32, rule: &'static str, message: String| {
        findings.push(Finding {
            file: path.to_string(),
            line,
            rule,
            message,
            allowed: None,
        });
    };

    // --- token-sequence rules ---
    for (i, t) in sig.iter().enumerate() {
        let line = t.line;
        match t.kind {
            TokenKind::Ident => {
                let name = t.text(src);
                if schema_producing && !in_test(line) && (name == "HashMap" || name == "HashSet") {
                    push(
                        line,
                        "unordered-collection",
                        format!(
                            "`{name}` in a schema-producing file: iteration order is \
                             nondeterministic; use BTreeMap/BTreeSet/WordMap or sort \
                             before emitting"
                        ),
                    );
                }
                if class.time_sensitive && !in_test(line) {
                    let now_call = matches!(name, "SystemTime" | "Instant")
                        && punct_at(&sig, i + 1, ':', src)
                        && punct_at(&sig, i + 2, ':', src)
                        && ident_at(&sig, i + 3, "now", src);
                    if now_call || name == "SystemTime" {
                        push(
                            line,
                            "wall-clock",
                            format!(
                                "`{name}` in a canonical-JSON/cache-key module: wall \
                                 clocks must never influence canonical bytes"
                            ),
                        );
                    }
                }
                if class.serve && !in_test(line) {
                    if matches!(name, "println" | "eprintln" | "print" | "eprint")
                        && punct_at(&sig, i + 1, '!', src)
                    {
                        push(
                            line,
                            "serve-print",
                            format!(
                                "bare `{name}!` in the serve tier: a dying consumer \
                                 (EPIPE) must not panic the process; use elog! or a \
                                 framed response"
                            ),
                        );
                    }
                    if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
                        && punct_at(&sig, i + 1, '!', src)
                    {
                        push(
                            line,
                            "serve-panic",
                            format!(
                                "`{name}!` in the serve tier: return a framed error \
                                 response instead of dying"
                            ),
                        );
                    }
                    if matches!(name, "unwrap" | "expect")
                        && i > 0
                        && punct(sig[i - 1], '.', src)
                        && punct_at(&sig, i + 1, '(', src)
                    {
                        push(
                            line,
                            "serve-unwrap",
                            format!(
                                "`.{name}(…)` in the serve tier: handle the error \
                                 (framed response, PoisonError::into_inner, retry) or \
                                 allow with a written justification"
                            ),
                        );
                    }
                }
                if class.key_math
                    && !in_test(line)
                    && name == "as"
                    && sig
                        .get(i + 1)
                        .is_some_and(|n| matches!(ident(n, src), Some("u64" | "usize" | "u32")))
                {
                    let target = sig[i + 1].text(src);
                    push(
                        line,
                        "narrowing-cast",
                        format!(
                            "`as {target}` in key-range/ownership math: narrowing \
                             silently wraps; use u128 arithmetic or a checked \
                             conversion"
                        ),
                    );
                }
            }
            TokenKind::Str | TokenKind::RawStr => {
                if let Some(content) = string_content(t, src) {
                    if !class.registry && suu_core::schemas::is_schema_id(content) {
                        push(
                            line,
                            "schema-literal",
                            format!(
                                "schema id {content:?} spelled as a literal: cite the \
                                 suu_core::schemas registry so version bumps cannot \
                                 drift"
                            ),
                        );
                    }
                    if schema_producing && path != "crates/core/src/json.rs" && !in_test(line) {
                        if let Some(spec) = precision_format(content) {
                            push(
                                line,
                                "float-format",
                                format!(
                                    "float format {spec:?} outside the shortest-repr \
                                     json writer: schema'd floats must round-trip \
                                     bitwise"
                                ),
                            );
                        }
                    }
                }
            }
            _ => {}
        }
    }

    // --- per-file rule: blocking reads in the serve tier ---
    if class.serve {
        let mentions = |word: &str| {
            sig.iter()
                .any(|t| t.kind == TokenKind::Ident && t.text(src) == word)
        };
        if mentions("TcpStream") && !mentions("set_read_timeout") && !mentions("set_nonblocking") {
            let first = sig
                .iter()
                .find(|t| t.kind == TokenKind::Ident && t.text(src) == "TcpStream")
                .map(|t| t.line)
                .unwrap_or(1);
            if !in_test(first) {
                push(
                    first,
                    "blocking-net-read",
                    "TcpStream used but this file never sets a read timeout or \
                     nonblocking mode: a stalled peer would wedge the tier"
                        .to_string(),
                );
            }
        }
    }

    apply_directives(&directives, &mut findings);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

fn ident<'s>(t: &Token, src: &'s str) -> Option<&'s str> {
    (t.kind == TokenKind::Ident).then(|| t.text(src))
}

fn punct(t: &Token, c: char, src: &str) -> bool {
    t.kind == TokenKind::Punct && t.text(src).chars().eq(std::iter::once(c))
}

fn punct_at(sig: &[&Token], i: usize, c: char, src: &str) -> bool {
    sig.get(i).is_some_and(|t| punct(t, c, src))
}

fn ident_at(sig: &[&Token], i: usize, word: &str, src: &str) -> bool {
    sig.get(i).is_some_and(|t| ident(t, src) == Some(word))
}

/// `Some(spec)` when a format string contains a float-shaping spec:
/// `{…:.N…}` (fixed precision) or `{…:e}`/`{…:E}` (scientific).
fn precision_format(content: &str) -> Option<String> {
    let bytes = content.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'{' {
            // `{{` is an escaped literal brace, not a format argument.
            if bytes.get(i + 1) == Some(&b'{') {
                i += 2;
                continue;
            }
            let end = content[i..].find('}').map(|e| i + e)?;
            let inner = &content[i + 1..end];
            if let Some(colon) = inner.find(':') {
                let spec = &inner[colon + 1..];
                let precision = spec
                    .find('.')
                    .is_some_and(|d| spec.as_bytes().get(d + 1).is_some_and(u8::is_ascii_digit));
                if precision || spec.ends_with('e') || spec.ends_with('E') {
                    return Some(format!("{{{inner}}}"));
                }
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    None
}

/// Byte-span line ranges `(first, last)` of `#[cfg(test)] mod … { … }`
/// items (and other `#[cfg(test)]`-gated items up to their `;` or
/// closing brace).
fn cfg_test_regions(src: &str, sig: &[&Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 5 < sig.len() {
        let is_attr = punct_at(sig, i, '#', src)
            && punct_at(sig, i + 1, '[', src)
            && ident_at(sig, i + 2, "cfg", src)
            && punct_at(sig, i + 3, '(', src)
            && ident_at(sig, i + 4, "test", src)
            && punct_at(sig, i + 5, ')', src)
            && punct_at(sig, i + 6, ']', src);
        if !is_attr {
            i += 1;
            continue;
        }
        let start_line = sig[i].line;
        // Scan forward to the item body: the first `{` opens a block we
        // brace-match; a `;` before any `{` ends the item (e.g. a
        // `#[cfg(test)] mod tests;` or gated `use`).
        let mut j = i + 7;
        let mut end_line = start_line;
        while j < sig.len() {
            if punct_at(sig, j, ';', src) {
                end_line = sig[j].line;
                break;
            }
            if punct_at(sig, j, '{', src) {
                let mut depth = 1usize;
                j += 1;
                while j < sig.len() && depth > 0 {
                    if punct_at(sig, j, '{', src) {
                        depth += 1;
                    } else if punct_at(sig, j, '}', src) {
                        depth -= 1;
                    }
                    j += 1;
                }
                end_line = sig
                    .get(j.saturating_sub(1))
                    .map(|t| t.line)
                    .unwrap_or(src.lines().count() as u32);
                break;
            }
            j += 1;
        }
        if j >= sig.len() {
            // Unterminated item: gate the rest of the file.
            end_line = src.lines().count() as u32;
        }
        regions.push((start_line, end_line));
        i = j.max(i + 7);
    }
    regions
}

/// Extract directives from comment tokens; malformed ones become
/// findings directly.
fn parse_directives(
    path: &str,
    src: &str,
    tokens: &[Token],
    directives: &mut Vec<Directive>,
    findings: &mut Vec<Finding>,
) {
    let marker = marker();
    for t in tokens {
        let body = match t.kind {
            TokenKind::LineComment => {
                let text = t.text(src);
                let text = text.trim_start_matches('/'); // //, ///, ////…
                text.strip_prefix('!').unwrap_or(text).trim()
            }
            TokenKind::BlockComment => {
                let text = t.text(src);
                let text = text.strip_prefix("/*").unwrap_or(text);
                let text = text.strip_suffix("*/").unwrap_or(text);
                text.trim_start_matches(['*', '!']).trim()
            }
            _ => continue,
        };
        let Some(rest) = body.strip_prefix(marker.as_str()) else {
            continue;
        };
        let last_line = t.line + t.text(src).matches('\n').count() as u32;
        match parse_allow(rest.trim()) {
            Ok((rule, justification)) => {
                if !rule_exists(&rule) {
                    findings.push(Finding {
                        file: path.to_string(),
                        line: t.line,
                        rule: "allow-unknown-rule",
                        message: format!("allow names unknown rule {rule:?} (see --list-rules)"),
                        allowed: None,
                    });
                    continue;
                }
                if justification.as_deref().is_none_or(|j| j.trim().is_empty()) {
                    findings.push(Finding {
                        file: path.to_string(),
                        line: t.line,
                        rule: "allow-justification",
                        message: format!(
                            "allow({rule}) carries no justification; write \
                             allow({rule}, \"why this is safe\")"
                        ),
                        allowed: None,
                    });
                    continue;
                }
                directives.push(Directive {
                    first_line: t.line,
                    last_line,
                    rule,
                    justification,
                });
            }
            Err(why) => findings.push(Finding {
                file: path.to_string(),
                line: t.line,
                rule: "allow-syntax",
                message: format!("malformed directive: {why}"),
                allowed: None,
            }),
        }
    }
}

/// Parse `allow(<rule>)` or `allow(<rule>, "<justification>")`.
fn parse_allow(text: &str) -> Result<(String, Option<String>), String> {
    let rest = text
        .strip_prefix("allow")
        .ok_or("expected `allow(…)` after the marker")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(').ok_or("expected `(` after `allow`")?;
    let rest = rest.strip_suffix(')').ok_or("expected closing `)`")?;
    let (rule, justification) = match rest.split_once(',') {
        None => (rest.trim(), None),
        Some((rule, j)) => {
            let j = j.trim();
            let j = j
                .strip_prefix('"')
                .and_then(|j| j.strip_suffix('"'))
                .ok_or("justification must be a double-quoted string")?;
            (rule.trim(), Some(j.to_string()))
        }
    };
    if rule.is_empty() || !rule.bytes().all(|b| b.is_ascii_lowercase() || b == b'-') {
        return Err(format!("rule name {rule:?} must be kebab-case"));
    }
    Ok((rule.to_string(), justification))
}

/// Mark findings covered by a directive as allowed (directive
/// meta-findings are exempt — they cannot be suppressed).
fn apply_directives(directives: &[Directive], findings: &mut [Finding]) {
    for f in findings.iter_mut() {
        if f.rule.starts_with("allow-") {
            continue;
        }
        for d in directives {
            if d.rule == f.rule && d.first_line <= f.line && f.line <= d.last_line + 1 {
                f.allowed = d.justification.clone();
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{lint_file, rule_exists, Finding};

    /// Test sources are built here instead of spelled inline so the
    /// engine, linting its own source, sees only fragments that cannot
    /// fire (a schema id split across `join`, directives inside string
    /// literals that only become comments in the synthetic file).
    fn unallowed(findings: &[Finding]) -> Vec<&Finding> {
        findings.iter().filter(|f| f.allowed.is_none()).collect()
    }

    #[test]
    fn allow_with_justification_suppresses_and_records_it() {
        let src = "// suu-lint: allow(serve-panic, \"test fixture\")\npanic!(\"boom\");\n";
        let findings = lint_file("crates/serve/src/server.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "serve-panic");
        assert_eq!(findings[0].allowed.as_deref(), Some("test fixture"));
        assert!(unallowed(&findings).is_empty());
    }

    #[test]
    fn allow_without_justification_does_not_suppress() {
        let src = "// suu-lint: allow(serve-panic)\npanic!(\"boom\");\n";
        let findings = lint_file("crates/serve/src/server.rs", src);
        let rules: Vec<&str> = unallowed(&findings).iter().map(|f| f.rule).collect();
        assert_eq!(rules, ["allow-justification", "serve-panic"]);
    }

    #[test]
    fn allow_naming_unknown_rule_is_itself_a_finding() {
        let src = "// suu-lint: allow(no-such-rule, \"why\")\nlet x = 1;\n";
        let findings = lint_file("crates/serve/src/server.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "allow-unknown-rule");
        assert!(findings[0].allowed.is_none());
    }

    #[test]
    fn malformed_directive_is_an_allow_syntax_finding() {
        for bad in [
            "// suu-lint: allow serve-panic\n",
            "// suu-lint: allow(serve-panic\n",
            "// suu-lint: allow(serve-panic, unquoted)\n",
            "// suu-lint: allow(Serve-Panic, \"case\")\n",
        ] {
            let findings = lint_file("crates/serve/src/server.rs", bad);
            assert_eq!(findings.len(), 1, "for {bad:?}");
            assert_eq!(findings[0].rule, "allow-syntax", "for {bad:?}");
        }
    }

    #[test]
    fn directive_covers_only_its_own_and_the_next_line() {
        // A blank line between the directive and the violation breaks
        // adjacency: the finding must survive unallowed.
        let src = "// suu-lint: allow(serve-panic, \"too far away\")\n\npanic!(\"boom\");\n";
        let findings = lint_file("crates/serve/src/server.rs", src);
        let live = unallowed(&findings);
        assert_eq!(live.len(), 1);
        assert_eq!(live[0].rule, "serve-panic");
        assert_eq!(live[0].line, 3);
    }

    #[test]
    fn meta_findings_cannot_be_self_allowed() {
        let src = "// suu-lint: allow(allow-justification, \"nice try\")\n\
                   // suu-lint: allow(serve-panic)\npanic!(\"boom\");\n";
        let findings = lint_file("crates/serve/src/server.rs", src);
        assert!(findings
            .iter()
            .any(|f| f.rule == "allow-justification" && f.allowed.is_none()));
    }

    #[test]
    fn cfg_test_regions_skip_serve_rules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { panic!(\"fine here\"); }\n}\n";
        let findings = lint_file("crates/serve/src/server.rs", src);
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn test_paths_skip_serve_rules_entirely() {
        let src = "fn f() { x.unwrap(); println!(\"hi\"); }\n";
        let findings = lint_file("crates/serve/tests/e2e.rs", src);
        assert!(findings.is_empty(), "got {findings:?}");
    }

    #[test]
    fn schema_literal_fires_everywhere_but_the_registry() {
        // Assembled so this file's own source never contains the id.
        let id = ["suu-results", "v2"].join("/");
        let src = format!("fn f() -> &'static str {{ \"{id}\" }}\n");
        let findings = lint_file("crates/sim/src/evaluate.rs", &src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "schema-literal");
        // The registry is the one place allowed to spell ids.
        assert!(lint_file("crates/core/src/schemas.rs", &src).is_empty());
        // Not test-gated: literals in test files drift just as easily.
        let in_test = lint_file("crates/core/tests/anything.rs", &src);
        assert_eq!(in_test.len(), 1);
        assert_eq!(in_test[0].rule, "schema-literal");
    }

    #[test]
    fn wall_clock_is_scoped_to_time_sensitive_modules() {
        let src = "fn f() { let t = Instant::now(); }\n";
        let hit = lint_file("crates/core/src/json.rs", src);
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].rule, "wall-clock");
        assert!(lint_file("crates/algos/src/lib.rs", src).is_empty());
    }

    #[test]
    fn serve_print_is_scoped_to_the_serve_tree() {
        let src = "fn f() { println!(\"hi\"); }\n";
        let hit = lint_file("crates/serve/src/service.rs", src);
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].rule, "serve-print");
        assert!(lint_file("crates/bench/src/bin/bench_baseline.rs", src).is_empty());
    }

    #[test]
    fn serve_unwrap_requires_a_method_call_shape() {
        let fires = lint_file("crates/serve/src/server.rs", "fn f() { x.unwrap(); }\n");
        assert_eq!(fires.len(), 1);
        assert_eq!(fires[0].rule, "serve-unwrap");
        // A free function named `unwrap` or a bare path is not `.unwrap()`.
        let free = lint_file("crates/serve/src/server.rs", "fn f() { unwrap(x); }\n");
        assert!(free.is_empty(), "got {free:?}");
    }

    #[test]
    fn unordered_collection_requires_a_schema_producing_file() {
        let src = "fn f() { let m = HashMap::new(); }\n";
        let hit = lint_file("crates/bench/src/report.rs", src);
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].rule, "unordered-collection");
        // Unlisted file with no registry citation: out of scope.
        assert!(lint_file("crates/algos/src/lib.rs", src).is_empty());
        // Citing the registry pulls a file into the producing set.
        let citing = "fn f() { let _ = schemas::RESULTS; let m = HashMap::new(); }\n";
        let hit = lint_file("crates/algos/src/lib.rs", citing);
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].rule, "unordered-collection");
    }

    #[test]
    fn narrowing_cast_is_scoped_to_key_math_files() {
        let src = "fn f(x: u128) -> u64 { x as u64 }\n";
        let hit = lint_file("crates/serve/src/router.rs", src);
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].rule, "narrowing-cast");
        assert!(lint_file("crates/serve/src/server.rs", src).is_empty());
    }

    #[test]
    fn blocking_net_read_is_silenced_by_a_timeout_anywhere_in_file() {
        let bare = "fn f() { let s = TcpStream::connect(addr); }\n";
        let hit = lint_file("crates/serve/src/client.rs", bare);
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].rule, "blocking-net-read");
        let timed = "fn f() { let s = TcpStream::connect(addr); s.set_read_timeout(Some(d)); }\n";
        let calm = lint_file("crates/serve/src/client.rs", timed);
        assert!(calm.is_empty(), "got {calm:?}");
    }

    #[test]
    fn findings_are_sorted_and_name_real_rules() {
        let src = "fn f() { println!(\"a\"); }\nfn g() { panic!(\"b\"); }\n";
        let findings = lint_file("crates/serve/src/server.rs", src);
        let mut sorted = findings.clone();
        sorted.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
        assert_eq!(
            findings.iter().map(|f| f.render()).collect::<Vec<_>>(),
            sorted.iter().map(|f| f.render()).collect::<Vec<_>>()
        );
        for f in &findings {
            assert!(rule_exists(f.rule), "unknown rule {:?}", f.rule);
        }
    }
}
