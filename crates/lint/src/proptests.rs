//! Property-based tests for the lexer and the rule engine.
//!
//! The lexer's two contracts are *totality* (no input panics it — the
//! linter must survive every file in the tree, including half-written
//! ones) and *tiling* (tokens are contiguous and exhaustive: offsets
//! start at 0, each token begins where the previous one ended, and the
//! last token ends at `src.len()`). Every rule reads `Token::text`
//! slices, so a tiling bug would silently skip or double-count source
//! bytes — the fuzz pins it down harder than the unit tests can.

use crate::lexer::{lex, TokenKind};
use crate::rules::{lint_file, rule_exists};
use proptest::prelude::*;

/// Syntax fragments chosen to collide interestingly when concatenated:
/// every delimiter that changes lexing mode, halves of multi-char
/// tokens, and the literal forms the lexer special-cases.
const FRAGMENTS: &[&str] = &[
    "fn main() { ",
    "}",
    "\"",
    "\\\"",
    "\"str\"",
    "r#\"",
    "\"#",
    "r##\"raw\"##",
    "b\"bytes\"",
    "br#\"raw bytes\"#",
    "r#ident",
    "'a",
    "'a'",
    "'\\n'",
    "b'x'",
    "// line comment\n",
    "/*",
    "*/",
    "/* nested /* deep */ */",
    "//! doc\n",
    "/// doc\n",
    "0x1f",
    "1_000.5e-3",
    "2.",
    "0..10",
    "x.unwrap()",
    "HashMap::new()",
    "println!(\"{:.3}\")",
    // suu-lint: allow(schema-literal, "lexer fuzz fragment exercising the schema-id scanner; never emitted as protocol bytes")
    "suu-results/v2",
    "\n",
    " ",
    "\t",
    "let x = ",
    "#[cfg(test)]",
    "mod tests {",
    "é",
    "→",
    "\u{0}",
];

/// Characters for the unstructured soup: mode-switching bytes at high
/// density, so truncated literals and stray fences are common.
const PALETTE: &[char] = &[
    '"', '\'', '#', 'r', 'b', '/', '*', '\\', '\n', ' ', 'a', '0', '.', '{', '}', '(', ')', ':',
    '!', '_', 'é', '→',
];

/// Tokens tile `src`: contiguous, exhaustive, with sane line numbers.
fn assert_tiling(src: &str) {
    let tokens = lex(src);
    if src.is_empty() {
        prop_assert!(tokens.is_empty());
        return;
    }
    prop_assert_eq!(tokens[0].start, 0, "first token must start at 0");
    for pair in tokens.windows(2) {
        prop_assert_eq!(
            pair[0].end,
            pair[1].start,
            "gap or overlap between tokens in {:?}",
            src
        );
    }
    let last = tokens.last().unwrap();
    prop_assert_eq!(last.end, src.len(), "tokens must cover {:?}", src);
    let mut expected_line = 1u32;
    for t in &tokens {
        prop_assert!(t.start <= t.end);
        // Offsets always land on char boundaries, so text() never panics.
        prop_assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
        prop_assert_eq!(
            t.line,
            expected_line,
            "token at {} in {:?} reports the wrong line",
            t.start,
            src
        );
        expected_line += t.text(src).matches('\n').count() as u32;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Concatenated syntax fragments — raw-string fences meeting quotes,
    /// comment openers meeting closers — always lex into a clean tiling.
    #[test]
    fn fragment_soup_lexes_totally(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..40)
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        assert_tiling(&src);
    }

    /// Unstructured character soup (dense in quotes, fences and escapes)
    /// never panics the lexer and always tiles, even when every literal
    /// is unterminated.
    #[test]
    fn char_soup_lexes_totally(
        picks in proptest::collection::vec(0usize..PALETTE.len(), 0..80)
    ) {
        let src: String = picks.iter().map(|&i| PALETTE[i]).collect();
        assert_tiling(&src);
    }

    /// Anything the lexer labels Str/RawStr/Char keeps its quote (or
    /// fence) prefix — rules rely on kind to skip literal content, so a
    /// mislabeled token would let `println!` inside a string fire rules.
    #[test]
    fn string_tokens_start_with_their_delimiters(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..30)
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        for t in lex(&src) {
            let text = t.text(&src);
            match t.kind {
                TokenKind::Str => prop_assert!(
                    text.trim_start_matches('b').starts_with('"'),
                    "Str token {:?}",
                    text
                ),
                TokenKind::RawStr => prop_assert!(
                    text.starts_with('r') || text.starts_with("br"),
                    "RawStr token {:?}",
                    text
                ),
                TokenKind::Char => prop_assert!(
                    text.trim_start_matches('b').starts_with('\''),
                    "Char token {:?}",
                    text
                ),
                _ => {}
            }
        }
    }

    /// The rule engine is total over arbitrary sources for every file
    /// class (serve, key-math, schema-listed, test), and any finding it
    /// reports points at a real line of the input and names a real rule.
    #[test]
    fn rule_engine_is_total_over_soup(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..30),
        which in 0usize..4
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let path = [
            "crates/serve/src/router.rs",
            "crates/serve/src/bin/loadgen.rs",
            "crates/bench/src/report.rs",
            "crates/core/tests/anything.rs",
        ][which];
        let lines = src.lines().count().max(1) as u32;
        for finding in lint_file(path, &src) {
            prop_assert!(
                finding.line >= 1 && finding.line <= lines,
                "finding line {} out of range 1..={} for {:?}",
                finding.line,
                lines,
                src
            );
            prop_assert!(rule_exists(finding.rule));
        }
    }
}
