//! # suu-lint — the workspace's determinism & protocol static-analysis pass
//!
//! The repo's central claim — bitwise-identical outcomes across
//! engines, thread counts, shards and replays — rests on invariants
//! that tests can only sample but a token walk can check totally:
//!
//! * **determinism** — no unordered-map iteration, wall clocks or
//!   lossy float formatting anywhere near schema'd output;
//! * **serving robustness** — no bare prints or panic paths in
//!   `crates/serve`, no blocking reads without a timeout;
//! * **protocol hygiene** — schema ids only via [`suu_core::schemas`],
//!   no narrowing casts in key-range math.
//!
//! [`lexer`] is a real token-level Rust lexer (raw strings, nested
//! block comments, char/lifetime disambiguation), [`rules`] the
//! deny-by-default rule engine with per-line
//! `allow(<rule>, "<justification>")` escape hatches. The `suu-lint`
//! binary walks the workspace and exits nonzero on any unallowed
//! finding; `tests/lint_clean.rs` runs the same walk under `cargo
//! test`, and the binary's `--self-test` proves every rule still fires
//! on seeded-bad fixture files (a broken lexer cannot pass as
//! "0 findings").

pub mod lexer;
#[cfg(test)]
mod proptests;
pub mod rules;

use rules::Finding;
use std::path::{Path, PathBuf};

/// A seeded-bad fixture: a virtual workspace path (drives rule
/// scoping), the source, and the rule that must fire on it.
pub struct Fixture {
    pub virtual_path: &'static str,
    pub source: &'static str,
    pub must_fire: &'static str,
}

/// One fixture per rule, plus a clean file that must produce zero
/// findings. `--self-test` and CI assert each rule fires on its
/// fixture — detection itself is under test, not just "no findings".
pub fn fixtures() -> Vec<Fixture> {
    vec![
        Fixture {
            virtual_path: "crates/bench/src/report.rs",
            source: include_str!("../fixtures/unordered_collection.rs.bad"),
            must_fire: "unordered-collection",
        },
        Fixture {
            virtual_path: "crates/serve/src/cache.rs",
            source: include_str!("../fixtures/wall_clock.rs.bad"),
            must_fire: "wall-clock",
        },
        Fixture {
            virtual_path: "crates/bench/src/report.rs",
            source: include_str!("../fixtures/float_format.rs.bad"),
            must_fire: "float-format",
        },
        Fixture {
            virtual_path: "crates/serve/src/server.rs",
            source: include_str!("../fixtures/serve_print.rs.bad"),
            must_fire: "serve-print",
        },
        Fixture {
            virtual_path: "crates/serve/src/server.rs",
            source: include_str!("../fixtures/serve_panic.rs.bad"),
            must_fire: "serve-panic",
        },
        Fixture {
            virtual_path: "crates/serve/src/server.rs",
            source: include_str!("../fixtures/serve_unwrap.rs.bad"),
            must_fire: "serve-unwrap",
        },
        Fixture {
            virtual_path: "crates/serve/src/client.rs",
            source: include_str!("../fixtures/blocking_net_read.rs.bad"),
            must_fire: "blocking-net-read",
        },
        Fixture {
            virtual_path: "crates/sim/src/evaluate.rs",
            source: include_str!("../fixtures/schema_literal.rs.bad"),
            must_fire: "schema-literal",
        },
        Fixture {
            virtual_path: "crates/serve/src/router.rs",
            source: include_str!("../fixtures/narrowing_cast.rs.bad"),
            must_fire: "narrowing-cast",
        },
        Fixture {
            virtual_path: "crates/serve/src/server.rs",
            source: include_str!("../fixtures/allow_syntax.rs.bad"),
            must_fire: "allow-syntax",
        },
        Fixture {
            virtual_path: "crates/serve/src/server.rs",
            source: include_str!("../fixtures/allow_justification.rs.bad"),
            must_fire: "allow-justification",
        },
        Fixture {
            virtual_path: "crates/serve/src/server.rs",
            source: include_str!("../fixtures/allow_unknown_rule.rs.bad"),
            must_fire: "allow-unknown-rule",
        },
    ]
}

/// The clean fixture: realistic code on which no rule may fire.
pub fn clean_fixture() -> Fixture {
    Fixture {
        virtual_path: "crates/serve/src/server.rs",
        source: include_str!("../fixtures/clean.rs.good"),
        must_fire: "",
    }
}

/// Run every fixture; returns human-readable failures (empty = pass).
pub fn self_test() -> Vec<String> {
    let mut failures = Vec::new();
    for fixture in fixtures() {
        let findings = rules::lint_file(fixture.virtual_path, fixture.source);
        let fired = findings
            .iter()
            .any(|f| f.rule == fixture.must_fire && f.allowed.is_none());
        if !fired {
            failures.push(format!(
                "rule {:?} did not fire on its fixture (as {}): got [{}]",
                fixture.must_fire,
                fixture.virtual_path,
                findings
                    .iter()
                    .map(|f| f.rule)
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }
    let clean = clean_fixture();
    let findings = rules::lint_file(clean.virtual_path, clean.source);
    let unallowed: Vec<&Finding> = findings.iter().filter(|f| f.allowed.is_none()).collect();
    if !unallowed.is_empty() {
        failures.push(format!(
            "clean fixture produced findings: {}",
            unallowed
                .iter()
                .map(|f| f.render())
                .collect::<Vec<_>>()
                .join("; ")
        ));
    }
    failures
}

/// Workspace `.rs` files under `root`, workspace-relative with forward
/// slashes, deterministically sorted. Skips `target/`, VCS metadata and
/// the lint fixtures (which are deliberately bad and not `.rs` anyway).
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if matches!(name, "target" | ".git" | ".github" | "fixtures") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint every workspace source under `root`; findings come back in
/// deterministic (path, line, rule) order, allowed ones included.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for (rel, path) in workspace_sources(root)? {
        let src = std::fs::read_to_string(&path)?;
        findings.extend(rules::lint_file(&rel, &src));
    }
    Ok(findings)
}
