//! **suu-lint** — walk the workspace sources and enforce the repo's
//! determinism & protocol invariants as deny-by-default diagnostics.
//!
//! ```sh
//! suu-lint [ROOT]          # human diagnostics, exit 1 on any finding
//! suu-lint --json [ROOT]   # machine output (schema suu-lint/v1)
//! suu-lint --list-rules    # rule registry with scopes
//! suu-lint --self-test     # prove every rule fires on its seeded-bad
//!                          # fixture (a broken lexer can't pass as ok)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use suu_core::json::Json;
use suu_lint::rules::{Finding, RULES};

fn usage() -> ExitCode {
    eprintln!("usage: suu-lint [--json] [--list-rules] [--self-test] [ROOT]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut json = false;
    let mut list_rules = false;
    let mut self_test = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--self-test" => self_test = true,
            "--help" | "-h" => return usage(),
            other if other.starts_with('-') => {
                eprintln!("suu-lint: unknown flag {other:?}");
                return usage();
            }
            path if root.is_none() => root = Some(PathBuf::from(path)),
            _ => return usage(),
        }
    }

    if list_rules {
        for rule in RULES {
            println!("{:<22} {}", rule.name, rule.summary);
            println!("{:<22} scope: {}", "", rule.scope);
        }
        return ExitCode::SUCCESS;
    }

    if self_test {
        let failures = suu_lint::self_test();
        if failures.is_empty() {
            println!(
                "suu-lint self-test: all {} rules fire on their fixtures; clean fixture clean",
                suu_lint::fixtures().len()
            );
            return ExitCode::SUCCESS;
        }
        for failure in &failures {
            eprintln!("suu-lint self-test: {failure}");
        }
        return ExitCode::FAILURE;
    }

    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let files = match suu_lint::workspace_sources(&root) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("suu-lint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let mut findings: Vec<Finding> = Vec::new();
    for (rel, path) in &files {
        match std::fs::read_to_string(path) {
            Ok(src) => findings.extend(suu_lint::rules::lint_file(rel, &src)),
            Err(e) => {
                eprintln!("suu-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }
    let (allowed, denied): (Vec<&Finding>, Vec<&Finding>) =
        findings.iter().partition(|f| f.allowed.is_some());

    if json {
        let finding_json = |f: &Finding| {
            let mut obj = Json::obj()
                .field("file", f.file.as_str())
                .field("line", f.line as u64)
                .field("rule", f.rule)
                .field("message", f.message.as_str());
            if let Some(justification) = &f.allowed {
                obj = obj.field("justification", justification.as_str());
            }
            obj
        };
        let doc = Json::obj()
            .field("schema", suu_core::schemas::LINT_V1)
            .field("files_scanned", files.len() as u64)
            .field(
                "rules",
                Json::Arr(RULES.iter().map(|r| Json::Str(r.name.into())).collect()),
            )
            .field(
                "findings",
                Json::Arr(denied.iter().map(|f| finding_json(f)).collect()),
            )
            .field(
                "allowed",
                Json::Arr(allowed.iter().map(|f| finding_json(f)).collect()),
            );
        println!("{}", doc.to_pretty());
    } else {
        for f in &denied {
            println!("{}", f.render());
        }
        println!(
            "suu-lint: {} files, {} rules, {} findings ({} allowed)",
            files.len(),
            RULES.len(),
            denied.len(),
            allowed.len()
        );
    }
    if denied.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
