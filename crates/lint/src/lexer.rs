//! A token-level Rust lexer.
//!
//! Rules must not fire on `println!` inside a raw string or on
//! `HashMap` in a doc comment, so naive grep is not an option: the rule
//! engine needs real token boundaries. This lexer handles the full
//! literal surface that matters for that job — cooked strings with
//! escapes, raw (byte) strings with arbitrary `#` fences, byte and char
//! literals, the `'a` lifetime vs `'a'` char ambiguity, raw
//! identifiers, line comments and *nested* block comments — while
//! staying total: it never panics, and on malformed input (unterminated
//! literal, stray byte) it degrades to best-effort tokens that still
//! tile the source exactly.
//!
//! **Tiling invariant** (pinned by unit tests and a proptest fuzz):
//! tokens are contiguous and exhaustive — `tokens[0].start == 0`,
//! `tokens[i].end == tokens[i+1].start`, and the last token ends at
//! `src.len()`. Concatenating every token's slice reconstructs the
//! input byte-for-byte, which is what makes diagnostics' line numbers
//! trustworthy.

/// What a token is, at the granularity the rule engine needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Runs of whitespace (newlines included).
    Whitespace,
    /// `// …` to end of line, including `///` and `//!` doc forms.
    LineComment,
    /// `/* … */`, nested per Rust rules; unterminated runs to EOF.
    BlockComment,
    /// Identifiers and keywords, including raw identifiers (`r#match`).
    Ident,
    /// `'static`, `'a` — a quote followed by ident chars with no close.
    Lifetime,
    /// Integer and float literals, with suffixes (`1_000u64`, `2.5e-3`).
    Number,
    /// `"…"` and `b"…"` cooked strings (escapes understood).
    Str,
    /// `r"…"`, `r#"…"#`, `br#"…"#` — raw and raw-byte strings.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A single punctuation/operator byte (`.`, `:`, `!`, `{`, …).
    Punct,
    /// Anything else (non-ASCII outside literals, stray bytes).
    Unknown,
}

/// One lexed token: kind plus the byte span and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

impl Token {
    /// The token's slice of the source.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// For a `Str`/`RawStr` token, the content between the quotes (prefix,
/// fences and escapes left as written). `None` for other kinds or if
/// the literal is too malformed to have an interior.
pub fn string_content<'s>(token: &Token, src: &'s str) -> Option<&'s str> {
    let text = token.text(src);
    match token.kind {
        TokenKind::Str => {
            let inner = text.strip_prefix('b').unwrap_or(text);
            let inner = inner.strip_prefix('"')?;
            Some(inner.strip_suffix('"').unwrap_or(inner))
        }
        TokenKind::RawStr => {
            let inner = text.strip_prefix('b').unwrap_or(text);
            let inner = inner.strip_prefix('r')?;
            let fences = inner.bytes().take_while(|&b| b == b'#').count();
            let inner = &inner[fences..];
            let inner = inner.strip_prefix('"')?;
            let close = format!("\"{}", "#".repeat(fences));
            Some(inner.strip_suffix(close.as_str()).unwrap_or(inner))
        }
        _ => None,
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lex `src` into a tiling token stream. Total: never panics.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        text: src,
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    src: &'s [u8],
    text: &'s str,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always make progress");
            self.tokens.push(Token {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advance one byte, maintaining the line counter.
    fn bump(&mut self) {
        if self.src.get(self.pos) == Some(&b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    /// Advance over one full character (multi-byte UTF-8 aware).
    fn bump_char(&mut self) {
        match self.text[self.pos..].chars().next() {
            Some(c) => {
                if c == '\n' {
                    self.line += 1;
                }
                self.pos += c.len_utf8();
            }
            // Mid-codepoint position cannot happen (we only land on
            // boundaries), but stay total regardless.
            None => self.pos += 1,
        }
    }

    fn next_kind(&mut self) -> TokenKind {
        let b = self.src[self.pos];
        if b.is_ascii_whitespace() {
            while self.peek(0).is_some_and(|b| b.is_ascii_whitespace()) {
                self.bump();
            }
            return TokenKind::Whitespace;
        }
        if b == b'/' && self.peek(1) == Some(b'/') {
            while self.peek(0).is_some_and(|b| b != b'\n') {
                self.bump_char();
            }
            return TokenKind::LineComment;
        }
        if b == b'/' && self.peek(1) == Some(b'*') {
            return self.block_comment();
        }
        if let Some(kind) = self.try_string_prefix() {
            return kind;
        }
        if is_ident_start(b) {
            while self.peek(0).is_some_and(is_ident_continue) {
                self.bump();
            }
            return TokenKind::Ident;
        }
        if b.is_ascii_digit() {
            return self.number();
        }
        if b == b'"' {
            return self.cooked_string();
        }
        if b == b'\'' {
            return self.char_or_lifetime();
        }
        if b.is_ascii() {
            self.bump();
            return TokenKind::Punct;
        }
        self.bump_char();
        TokenKind::Unknown
    }

    fn block_comment(&mut self) -> TokenKind {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => self.bump_char(),
                (None, _) => break, // unterminated: runs to EOF
            }
        }
        TokenKind::BlockComment
    }

    /// At an `r`/`b` that may open a raw string, byte string, byte char
    /// or raw identifier, consume it and return its kind. `None` means
    /// "just an ordinary identifier start" and consumes nothing.
    fn try_string_prefix(&mut self) -> Option<TokenKind> {
        let b = self.src[self.pos];
        if b != b'r' && b != b'b' {
            return None;
        }
        // Letters of the prefix: r, b, or br.
        let raw_at = match (b, self.peek(1)) {
            (b'r', _) => Some(1),
            (b'b', Some(b'r')) => Some(2),
            _ => None,
        };
        if let Some(letters) = raw_at {
            if b == b'r' || letters == 2 {
                // Possible raw string: letters, then #*, then '"'.
                let mut fences = 0;
                while self.peek(letters + fences) == Some(b'#') {
                    fences += 1;
                }
                if self.peek(letters + fences) == Some(b'"') {
                    for _ in 0..letters + fences + 1 {
                        self.bump();
                    }
                    return Some(self.raw_string_body(fences));
                }
                // `r#ident` raw identifier.
                if b == b'r' && fences == 1 && self.peek(letters + 1).is_some_and(is_ident_start) {
                    self.bump(); // r
                    self.bump(); // #
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.bump();
                    }
                    return Some(TokenKind::Ident);
                }
            }
        }
        if b == b'b' {
            match self.peek(1) {
                Some(b'"') => {
                    self.bump();
                    return Some(self.cooked_string());
                }
                Some(b'\'') => {
                    self.bump();
                    return Some(self.char_or_lifetime());
                }
                _ => {}
            }
        }
        None
    }

    /// Body of a raw string after the opening quote; `fences` is the
    /// number of `#`s that must follow the closing quote.
    fn raw_string_body(&mut self, fences: usize) -> TokenKind {
        loop {
            match self.peek(0) {
                None => break, // unterminated
                Some(b'"') => {
                    let closed = (0..fences).all(|i| self.peek(1 + i) == Some(b'#'));
                    self.bump();
                    if closed {
                        for _ in 0..fences {
                            self.bump();
                        }
                        break;
                    }
                }
                Some(_) => self.bump_char(),
            }
        }
        TokenKind::RawStr
    }

    /// Cooked string at an opening `"` (any `b` prefix already consumed).
    fn cooked_string(&mut self) -> TokenKind {
        self.bump(); // opening quote
        loop {
            match self.peek(0) {
                None => break, // unterminated
                Some(b'\\') => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump_char();
                    }
                }
                Some(b'"') => {
                    self.bump();
                    break;
                }
                Some(_) => self.bump_char(),
            }
        }
        TokenKind::Str
    }

    /// At a `'`: decide char literal vs lifetime.
    fn char_or_lifetime(&mut self) -> TokenKind {
        // 'x' is a char when the quote closes right after one (possibly
        // escaped) character; otherwise 'ident is a lifetime. `'a'`
        // needs the two-ahead check because `a` alone looks like a
        // lifetime start.
        match self.peek(1) {
            Some(b'\\') => {
                self.bump(); // '
                self.bump(); // backslash
                if self.peek(0).is_some() {
                    self.bump_char(); // escaped char
                }
                // Consume to the closing quote ('\u{1F600}' spans more).
                while self.peek(0).is_some_and(|b| b != b'\'' && b != b'\n') {
                    self.bump_char();
                }
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                TokenKind::Char
            }
            Some(c) if is_ident_start(c) && self.peek(2) != Some(b'\'') => {
                // Lifetime: quote + ident run, no closing quote.
                self.bump();
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                TokenKind::Lifetime
            }
            Some(_) => {
                self.bump(); // '
                if self.peek(0).is_some() {
                    self.bump_char(); // the character itself
                }
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                TokenKind::Char
            }
            None => {
                self.bump();
                TokenKind::Char // lone trailing quote: still total
            }
        }
    }

    fn number(&mut self) -> TokenKind {
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.bump();
            self.bump();
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
            {
                self.bump();
            }
            return TokenKind::Number;
        }
        while self
            .peek(0)
            .is_some_and(|b| b.is_ascii_digit() || b == b'_')
        {
            self.bump();
        }
        // Fraction only when a digit follows the dot: `1.max(2)` and
        // `0..n` must leave the dot alone.
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
            while self
                .peek(0)
                .is_some_and(|b| b.is_ascii_digit() || b == b'_')
            {
                self.bump();
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let sign = matches!(self.peek(1), Some(b'+' | b'-'));
            let digits_at = if sign { 2 } else { 1 };
            if self.peek(digits_at).is_some_and(|b| b.is_ascii_digit()) {
                for _ in 0..digits_at {
                    self.bump();
                }
                while self
                    .peek(0)
                    .is_some_and(|b| b.is_ascii_digit() || b == b'_')
                {
                    self.bump();
                }
            }
        }
        // Type suffix (u64, f32, usize…).
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        TokenKind::Number
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    /// The tiling invariant, asserted everywhere.
    fn assert_tiles(src: &str) {
        let tokens = lex(src);
        let mut pos = 0;
        for t in &tokens {
            assert_eq!(t.start, pos, "gap before {t:?} in {src:?}");
            assert!(t.end > t.start, "empty token {t:?}");
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "lexer did not consume all of {src:?}");
    }

    #[test]
    fn raw_string_hides_macro_calls() {
        let src = r##"let s = r#"println!("hi") /* not a comment */"#; x.unwrap();"##;
        assert_tiles(src);
        let toks = kinds(src);
        // The println! inside the raw string is one RawStr token…
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && t.contains("println!")));
        // …and the only Ident tokens are the real code.
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(idents, vec!["let", "s", "x", "unwrap"]);
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let src = "a /* outer /* inner */ still comment */ b";
        assert_tiles(src);
        let toks = kinds(src);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0], (TokenKind::Ident, "a"));
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert!(toks[1].1.contains("inner"));
        assert_eq!(toks[2], (TokenKind::Ident, "b"));
    }

    #[test]
    fn lifetime_vs_char_vs_escape() {
        let src = r"fn f<'a>(x: &'a str) { let c = 'x'; let n = '\n'; let u = '\u{41}'; }";
        assert_tiles(src);
        let toks = kinds(src);
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(chars, vec!["'x'", r"'\n'", r"'\u{41}'"]);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = r###"let a = b"bytes"; let b = br#"raw "bytes""#; let c = b'x';"###;
        assert_tiles(src);
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && *t == "b\"bytes\""));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && t.starts_with("br#")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && *t == "b'x'"));
    }

    #[test]
    fn raw_identifiers_and_bare_r() {
        let src = "let r#match = r; let r2 = r # 1;";
        assert_tiles(src);
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "r#match"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "r"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = r#"let s = "a \"quoted\" b"; let t = "\\";"#;
        assert_tiles(src);
        let strings: Vec<String> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .map(|t| t.text(src).to_string())
            .collect();
        assert_eq!(strings, vec![r#""a \"quoted\" b""#, r#""\\""#]);
    }

    #[test]
    fn string_content_strips_delimiters() {
        let src = r###"("plain", r"raw", r#"fenced"#, b"bytes", br##"double"##)"###;
        let contents: Vec<&str> = lex(src)
            .iter()
            .filter_map(|t| string_content(t, src))
            .collect();
        assert_eq!(contents, vec!["plain", "raw", "fenced", "bytes", "double"]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let src = "0..10; 1.max(2); 2.5e-3f64; 0xff_u8; 1_000_000";
        assert_tiles(src);
        let numbers: Vec<&str> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(
            numbers,
            vec!["0", "10", "1", "2", "2.5e-3f64", "0xff_u8", "1_000_000"]
        );
    }

    #[test]
    fn directives_inside_strings_are_not_comments() {
        let src = r#"let s = "// suu-lint: allow(fake, \"no\")";"#;
        assert_tiles(src);
        assert!(lex(src).iter().all(|t| t.kind != TokenKind::LineComment));
    }

    #[test]
    fn unterminated_literals_stay_total() {
        for src in [
            "let s = \"never closed",
            "let s = r#\"never closed",
            "/* never closed",
            "let c = '",
            "b\"",
            "r###\"x\"##",
        ] {
            assert_tiles(src);
        }
    }

    #[test]
    fn line_numbers_are_one_based_and_track_newlines() {
        let src = "a\nbb\n\nccc";
        let lines: Vec<(String, u32)> = lex(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| (t.text(src).to_string(), t.line))
            .collect();
        assert_eq!(
            lines,
            vec![("a".into(), 1), ("bb".into(), 2), ("ccc".into(), 4)]
        );
    }

    #[test]
    fn multiline_string_advances_line_counter() {
        let src = "let s = \"line\none\";\nnext";
        let next = lex(src)
            .into_iter()
            .find(|t| t.text(src) == "next")
            .expect("token");
        assert_eq!(next.line, 3);
    }
}
