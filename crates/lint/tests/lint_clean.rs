//! Self-application: the workspace must lint clean under `cargo test`,
//! and the detection machinery itself must still work (`self_test`
//! proves every rule fires on its seeded-bad fixture — a lexer or
//! engine regression cannot masquerade as "0 findings").

use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/lint/ -> crates/ -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
}

#[test]
fn workspace_lints_clean() {
    let findings = suu_lint::lint_workspace(workspace_root()).expect("workspace walk");
    let unallowed: Vec<String> = findings
        .iter()
        .filter(|f| f.allowed.is_none())
        .map(|f| f.render())
        .collect();
    assert!(
        unallowed.is_empty(),
        "suu-lint findings in the tree (fix or allow with a justification):\n{}",
        unallowed.join("\n")
    );
}

#[test]
fn every_rule_still_fires_on_its_fixture() {
    let failures = suu_lint::self_test();
    assert!(
        failures.is_empty(),
        "self-test failures:\n{}",
        failures.join("\n")
    );
}

#[test]
fn every_allow_in_the_tree_carries_a_justification() {
    let findings = suu_lint::lint_workspace(workspace_root()).expect("workspace walk");
    for f in findings.iter().filter(|f| f.allowed.is_some()) {
        let j = f.allowed.as_deref().unwrap_or_default();
        assert!(
            j.len() >= 15,
            "{} allows {} with a trivial justification {:?}; say why it is safe",
            f.file,
            f.rule,
            j
        );
    }
}
