//! `SUU-T`: directed-forest precedence via chain-block decomposition
//! (Theorem 12 / Appendix B).
//!
//! The forest is decomposed into at most `⌊log₂ n⌋ + 1` *blocks* of
//! vertex-disjoint chains (`suu_dag::Forest::rank_decomposition`, after
//! Kumar et al. \[7\]); executing the blocks in order respects every
//! precedence edge. Each block is scheduled by [`ChainPolicy`] (`SUU-C`),
//! giving the paper's
//! `O(log n · log(n+m) · log log min(m,n))`-approximation.

use crate::suu_c::{ChainConfig, ChainPolicy, ChainStats};
use crate::AlgoError;
use std::sync::Arc;
use suu_core::SuuInstance;
use suu_dag::Forest;
use suu_sim::{Assignment, Decision, Policy, StateView};

/// The block-sequential forest policy.
pub struct ForestPolicy {
    blocks: Vec<ChainPolicy>,
    /// Jobs per block (for completion detection).
    block_jobs: Vec<Vec<u32>>,
    current: usize,
    name: String,
}

impl ForestPolicy {
    /// Build `SUU-T` for an instance whose precedence is the given forest.
    pub fn build(
        inst: Arc<SuuInstance>,
        forest: &Forest,
        cfg: ChainConfig,
    ) -> Result<Self, AlgoError> {
        if forest.num_vertices() != inst.num_jobs() {
            return Err(AlgoError::BadInput(format!(
                "forest covers {} vertices, instance has {} jobs",
                forest.num_vertices(),
                inst.num_jobs()
            )));
        }
        let decomposition = forest.rank_decomposition();
        let mut blocks = Vec::with_capacity(decomposition.len());
        let mut block_jobs = Vec::with_capacity(decomposition.len());
        for (b, chains) in decomposition.into_iter().enumerate() {
            let jobs: Vec<u32> = chains.iter().flatten().copied().collect();
            let block_cfg = ChainConfig {
                seed: cfg.seed.wrapping_add(b as u64 + 1),
                ..cfg
            };
            blocks.push(ChainPolicy::build(inst.clone(), chains, block_cfg)?);
            block_jobs.push(jobs);
        }
        Ok(ForestPolicy {
            blocks,
            block_jobs,
            current: 0,
            name: "SUU-T".to_string(),
        })
    }

    /// Number of decomposition blocks (`≤ ⌊log₂ n⌋ + 1`).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Stats of each block's `SUU-C` run so far.
    pub fn block_stats(&self) -> Vec<ChainStats> {
        self.blocks.iter().map(|b| b.stats()).collect()
    }

    fn block_done(&self, b: usize, remaining: &suu_core::BitSet) -> bool {
        self.block_jobs[b].iter().all(|&j| !remaining.contains(j))
    }
}

impl Policy for ForestPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn reset(&mut self) {
        self.current = 0;
        for b in &mut self.blocks {
            b.reset();
        }
    }

    fn reseed(&mut self, seed: u64) {
        // Distinct stream per block, all pinned by the trial seed.
        for (i, b) in self.blocks.iter_mut().enumerate() {
            b.reseed(seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        }
    }

    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
        // Block transitions happen exactly at completion events, so the
        // engine is guaranteed to consult us when one finishes.
        while self.current < self.blocks.len() && self.block_done(self.current, view.remaining) {
            self.current += 1;
        }
        if self.current >= self.blocks.len() {
            return Decision::HOLD;
        }
        self.blocks[self.current].decide(view, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use suu_core::{workload, Precedence};
    use suu_dag::generators;
    use suu_sim::{execute, ExecConfig};

    fn forest_instance(
        seed: u64,
        m: usize,
        n: usize,
        in_forest: bool,
    ) -> (Arc<SuuInstance>, Forest) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let forest = if in_forest {
            generators::random_in_forest(n, 2.min(n), &mut rng)
        } else {
            generators::random_out_forest(n, 2.min(n), &mut rng)
        };
        let inst = workload::uniform_unrelated(
            m,
            n,
            0.2,
            0.95,
            Precedence::Forest(forest.clone()),
            &mut rng,
        );
        (Arc::new(inst), forest)
    }

    #[test]
    fn completes_out_forests() {
        for seed in 0..4u64 {
            let (inst, forest) = forest_instance(seed, 3, 12, false);
            let mut policy =
                ForestPolicy::build(inst.clone(), &forest, ChainConfig::default()).unwrap();
            assert!(policy.num_blocks() <= 5); // log2(12)+1
            let out = execute(&inst, &mut policy, &ExecConfig::default(), seed + 50);
            assert!(out.completed, "seed {seed}");
            assert_eq!(out.ineligible_assignments, 0, "seed {seed}");
        }
    }

    #[test]
    fn completes_in_forests() {
        for seed in 0..4u64 {
            let (inst, forest) = forest_instance(seed, 3, 12, true);
            let mut policy =
                ForestPolicy::build(inst.clone(), &forest, ChainConfig::default()).unwrap();
            let out = execute(&inst, &mut policy, &ExecConfig::default(), seed + 70);
            assert!(out.completed, "seed {seed}");
            assert_eq!(out.ineligible_assignments, 0, "seed {seed}");
        }
    }

    #[test]
    fn binary_tree_block_count_logarithmic() {
        let forest = generators::binary_out_tree(6); // 63 vertices
        let inst = Arc::new(workload::homogeneous(
            4,
            63,
            0.5,
            Precedence::Forest(forest.clone()),
        ));
        let policy = ForestPolicy::build(inst, &forest, ChainConfig::default()).unwrap();
        assert_eq!(policy.num_blocks(), 6); // ranks 0..=5
    }

    #[test]
    fn size_mismatch_rejected() {
        let forest = generators::binary_out_tree(3); // 7 vertices
        let inst = Arc::new(workload::homogeneous(2, 9, 0.5, Precedence::Independent));
        assert!(ForestPolicy::build(inst, &forest, ChainConfig::default()).is_err());
    }

    #[test]
    fn reset_replays_from_first_block() {
        let (inst, forest) = forest_instance(9, 2, 8, false);
        let mut policy =
            ForestPolicy::build(inst.clone(), &forest, ChainConfig::default()).unwrap();
        for seed in 0..3 {
            let out = execute(&inst, &mut policy, &ExecConfig::default(), seed);
            assert!(out.completed);
        }
    }
}
