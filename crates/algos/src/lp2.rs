//! The (LP2) relaxation for chain precedence (paper §4).
//!
//! ```text
//! (LP2)  min t
//!        s.t.  Σ_i ℓ'_ij x_ij >= L    ∀ j            (mass; L = 1 in the paper)
//!              Σ_j x_ij       <= t    ∀ i ∈ M        (load)
//!              Σ_{j ∈ C_k} d_j <= t   ∀ chain C_k    (chain length)
//!              0 <= x_ij <= d_j       ∀ i, j         (job length)
//!              d_j >= 1               ∀ j
//! ```
//!
//! The optimal value lower-bounds `O(E[T_OPT])` (Lemma 5, following \[11\]);
//! [`crate::rounding`] turns the fractional solution into an integral
//! assignment whose load *and* chain lengths stay within a constant factor
//! (Lemma 6).

use crate::rounding::{round_assignment, FractionalJob, RoundingReport};
use crate::AlgoError;
use suu_core::logmass::clamped;
use suu_core::{Assignment, JobId, MachineId, SuuInstance};
use suu_lp::{Cmp, LpBuilder, LpStatus};

/// Fractional solution of (LP2).
#[derive(Debug, Clone)]
pub struct Lp2Solution {
    /// The optimal fractional value `t*` (bounds load and chain lengths).
    pub t_star: f64,
    /// Jobs covered (all jobs of all chains, in chain order).
    pub jobs: Vec<u32>,
    /// Mass target `L`.
    pub target: f64,
    /// Positive `(machine, x*)` pairs per position in `jobs`.
    x: Vec<Vec<(u32, f64)>>,
    /// Fractional lengths `d*_j` per position in `jobs`.
    pub d: Vec<f64>,
}

impl Lp2Solution {
    /// Positive `(machine, x*)` pairs for the `p`-th job.
    pub fn x_for(&self, p: usize) -> &[(u32, f64)] {
        &self.x[p]
    }
}

/// Solve the fractional `LP2` over the given chains (lists of job ids in
/// precedence order; jobs outside the chains are ignored).
///
/// `target` is the per-job mass requirement — `1` for the algorithm, `1/2`
/// for the Lemma-5-style lower bound.
pub fn solve_lp2(
    inst: &SuuInstance,
    chains: &[Vec<u32>],
    target: f64,
) -> Result<Lp2Solution, AlgoError> {
    assert!(target > 0.0, "mass target must be positive");
    let jobs: Vec<u32> = chains.iter().flatten().copied().collect();
    if jobs.is_empty() {
        return Ok(Lp2Solution {
            t_star: 0.0,
            jobs,
            target,
            x: Vec::new(),
            d: Vec::new(),
        });
    }
    let m = inst.num_machines();
    let mut lp = LpBuilder::minimize();
    let t = lp.add_var(1.0);

    // Per job: d_j plus x_ij for machines with positive ell.
    let mut d_vars = Vec::with_capacity(jobs.len());
    let mut x_vars: Vec<Vec<(u32, suu_lp::VarId, f64)>> = Vec::with_capacity(jobs.len());
    for &j in &jobs {
        let d = lp.add_var(0.0);
        d_vars.push(d);
        let mut row = Vec::new();
        for i in 0..m as u32 {
            let ell = inst.ell(MachineId(i), JobId(j));
            if ell > 0.0 {
                row.push((i, lp.add_var(0.0), clamped(ell, target)));
            }
        }
        debug_assert!(!row.is_empty(), "unservable job {j} escaped validation");
        x_vars.push(row);
    }

    // Mass constraints.
    for row in &x_vars {
        let terms: Vec<_> = row.iter().map(|&(_, v, e)| (v, e)).collect();
        lp.add_constraint(&terms, Cmp::Ge, target);
    }
    // Load constraints.
    let mut per_machine: Vec<Vec<(suu_lp::VarId, f64)>> = vec![Vec::new(); m];
    for row in &x_vars {
        for &(i, v, _) in row {
            per_machine[i as usize].push((v, 1.0));
        }
    }
    for mut terms in per_machine {
        if terms.is_empty() {
            continue;
        }
        terms.push((t, -1.0));
        lp.add_constraint(&terms, Cmp::Le, 0.0);
    }
    // Chain-length constraints: Σ_{j∈C} d_j - t <= 0.
    let mut pos_of = std::collections::HashMap::new();
    for (p, &j) in jobs.iter().enumerate() {
        pos_of.insert(j, p);
    }
    for chain in chains {
        if chain.is_empty() {
            continue;
        }
        let mut terms: Vec<_> = chain.iter().map(|j| (d_vars[pos_of[j]], 1.0)).collect();
        terms.push((t, -1.0));
        lp.add_constraint(&terms, Cmp::Le, 0.0);
    }
    // x_ij <= d_j and d_j >= 1.
    for (p, row) in x_vars.iter().enumerate() {
        for &(_, v, _) in row {
            lp.add_constraint(&[(v, 1.0), (d_vars[p], -1.0)], Cmp::Le, 0.0);
        }
        lp.add_constraint(&[(d_vars[p], 1.0)], Cmp::Ge, 1.0);
    }

    let sol = lp.solve()?;
    match sol.status {
        LpStatus::Optimal => {}
        LpStatus::Infeasible => return Err(AlgoError::UnexpectedLpStatus("LP2 infeasible")),
        LpStatus::Unbounded => return Err(AlgoError::UnexpectedLpStatus("LP2 unbounded")),
    }

    let x = x_vars
        .iter()
        .map(|row| {
            row.iter()
                .filter_map(|&(i, v, _)| {
                    let val = sol.value(v);
                    (val > 1e-12).then_some((i, val))
                })
                .collect()
        })
        .collect();
    let d = d_vars.iter().map(|&v| sol.value(v)).collect();

    Ok(Lp2Solution {
        t_star: sol.objective,
        jobs,
        target,
        x,
        d,
    })
}

/// Lemma 6: round an [`Lp2Solution`] into an integral assignment with
/// per-job length caps `⌈6 d*_j⌉`.
pub fn round_lp2(
    inst: &SuuInstance,
    sol: &Lp2Solution,
) -> Result<(Assignment, RoundingReport), AlgoError> {
    let jobs: Vec<FractionalJob<'_>> = sol
        .jobs
        .iter()
        .enumerate()
        .map(|(p, &j)| FractionalJob {
            job: j,
            x: sol.x_for(p),
            d_star: Some(sol.d[p]),
        })
        .collect();
    round_assignment(inst, &jobs, sol.target, sol.t_star)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use suu_core::{workload, Precedence};

    #[test]
    fn empty_chains_trivial() {
        let inst = workload::homogeneous(1, 1, 0.5, Precedence::Independent);
        let sol = solve_lp2(&inst, &[], 1.0).unwrap();
        assert_eq!(sol.t_star, 0.0);
    }

    #[test]
    fn single_chain_lower_bounded_by_length() {
        // Chain of 4 jobs: d_j >= 1 forces t >= 4 regardless of machines.
        let inst = workload::homogeneous(8, 4, 0.5, Precedence::Independent);
        let chains = vec![vec![0u32, 1, 2, 3]];
        let sol = solve_lp2(&inst, &chains, 1.0).unwrap();
        assert!(sol.t_star >= 4.0 - 1e-6, "t* = {}", sol.t_star);
    }

    #[test]
    fn load_bound_dominates_for_parallel_chains() {
        // 4 singleton chains, 1 machine, ell = 1 (q=0.5), target 1:
        // each job needs 1 step on the machine -> t* = 4.
        let inst = workload::homogeneous(1, 4, 0.5, Precedence::Independent);
        let chains: Vec<Vec<u32>> = (0..4u32).map(|j| vec![j]).collect();
        let sol = solve_lp2(&inst, &chains, 1.0).unwrap();
        assert!((sol.t_star - 4.0).abs() < 1e-5, "t* = {}", sol.t_star);
    }

    #[test]
    fn d_respects_x() {
        let mut rng = SmallRng::seed_from_u64(5);
        let inst = workload::uniform_unrelated(3, 6, 0.3, 0.95, Precedence::Independent, &mut rng);
        let chains = vec![vec![0u32, 1, 2], vec![3, 4], vec![5]];
        let sol = solve_lp2(&inst, &chains, 1.0).unwrap();
        for (p, _) in sol.jobs.iter().enumerate() {
            for &(_, x) in sol.x_for(p) {
                assert!(x <= sol.d[p] + 1e-7, "x {} > d {}", x, sol.d[p]);
            }
            assert!(sol.d[p] >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn rounding_meets_lemma6_guarantees() {
        for seed in 0..20u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = 4 + (seed % 6) as usize;
            let m = 2 + (seed % 4) as usize;
            let inst =
                workload::uniform_unrelated(m, n, 0.1, 0.98, Precedence::Independent, &mut rng);
            // One chain with everything plus a couple singletons.
            let main: Vec<u32> = (0..(n as u32 - 2)).collect();
            let chains = vec![main, vec![n as u32 - 2], vec![n as u32 - 1]];
            let sol = solve_lp2(&inst, &chains, 1.0).unwrap();
            let (asg, report) = round_lp2(&inst, &sol).unwrap();
            assert!(report.min_clamped_mass >= 1.0 - 1e-9, "seed {seed}");
            assert!(report.max_load <= report.load_cap, "seed {seed}");
            // Length caps: x̂_ij <= ceil(6 d*_j).
            for (p, &j) in sol.jobs.iter().enumerate() {
                let cap = (6.0 * sol.d[p]).ceil() as u64;
                assert!(
                    asg.length(JobId(j)) <= cap,
                    "length {} > cap {} (seed {seed})",
                    asg.length(JobId(j)),
                    cap
                );
            }
            // Chain lengths bounded by ~7 t*.
            for chain in &chains {
                let len: u64 = chain.iter().map(|&j| asg.length(JobId(j))).sum();
                assert!(
                    (len as f64) <= 7.0 * sol.t_star + chain.len() as f64,
                    "chain length {len} vs t* {} (seed {seed})",
                    sol.t_star
                );
            }
        }
    }
}
