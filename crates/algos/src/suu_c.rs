//! `SUU-C`: the `O(log(n+m) · log log min(m,n))`-approximation for
//! disjoint-chain precedence (paper §4, Theorems 7 & 9).
//!
//! Construction pipeline:
//!
//! 1. **(LP2) + Lemma 6 rounding** give an integral assignment `{x̂_ij}`
//!    with per-job mass ≥ 1, load = `O(t_LP2)` and chain lengths
//!    `O(t_LP2)`.
//! 2. **Per-chain adaptive schedules `Σ_k`**: each chain works through its
//!    jobs in order; job `j` occupies a *block* of `d_j = max_i x̂_ij`
//!    supersteps during which machine `i` serves `j` for the first `x̂_ij`
//!    of them. Each block grants mass ≥ 1, i.e. constant success
//!    probability; failed jobs replay their block.
//! 3. **Pseudoschedule + random delay** (Theorem 7): all `Σ_k` run "in
//!    parallel" over supersteps; each chain's start is delayed by
//!    `δ_k ~ U{0..H}` (`H` = assignment load), which drops the maximum
//!    per-machine *congestion* to `O(log(n+m)/log log(n+m))` w.h.p.
//! 4. **Flattening**: a superstep with congestion `c` expands into `c`
//!    real timesteps, each machine serving its queued jobs one per step.
//! 5. **Long jobs** (`d_j > γ = t_LP2 / log₂(n+m)`): replaced in their
//!    chain by a γ-superstep *pause*; at the end of each γ-superstep
//!    *segment*, all long jobs whose pauses started in that segment run to
//!    completion under [`SemPolicy`] while the chains suspend.
//! 6. **Fallback**: if the execution blows past its high-probability
//!    budget (the paper's "bad event"), switch to the `O(n)` sequential
//!    gang schedule.
//!
//! The optional **coarsening** step (paper's "extending to nonpolynomial
//! `t_LP2`") rounds every `x̂_ij` down to a multiple of `t_LP2/(nm)` and
//! compensates by topping up each job's mass on its best machine —
//! bounding the number of distinct block offsets when `t_LP2` is huge.

use crate::lp2::{round_lp2, solve_lp2};
use crate::suu_i_sem::SemPolicy;
use crate::AlgoError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use suu_core::{Assignment, JobId, MachineId, SuuInstance};
use suu_sim::{Assignment as Row, Decision, Policy, StateView};

/// Tuning knobs for [`ChainPolicy`] (defaults follow the paper).
#[derive(Debug, Clone, Copy)]
pub struct ChainConfig {
    /// Apply the Theorem-7 random start delays. Disabling them is only
    /// useful for the congestion experiment (`fig_congestion`).
    pub use_random_delay: bool,
    /// Apply the nonpolynomial-`t_LP2` coarsening of §4.
    pub coarsen: bool,
    /// Seed for the policy's internal randomness (delays). Distinct from
    /// the engine's job-outcome randomness; the RNG persists across
    /// `reset` so every trial draws fresh delays deterministically.
    pub seed: u64,
    /// Multiplier for the bad-event fallback budget (real steps allowed
    /// before switching to the sequential gang schedule).
    pub fallback_factor: u64,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            use_random_delay: true,
            coarsen: false,
            seed: 0xC4A1,
            fallback_factor: 64,
        }
    }
}

/// Observables from the most recent execution (Theorem 7 experiment).
#[derive(Debug, Clone, Copy, Default)]
pub struct ChainStats {
    /// Supersteps executed.
    pub supersteps: u64,
    /// Maximum congestion (jobs per machine per superstep) observed.
    pub max_congestion: u64,
    /// Number of long-job [`SemPolicy`] phases run.
    pub long_job_phases: u64,
    /// Whether the bad-event fallback engaged.
    pub fallback_triggered: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Supersteps,
    LongJobs,
    Fallback,
}

/// The `SUU-C` policy.
pub struct ChainPolicy {
    inst: Arc<SuuInstance>,
    /// Chains in precedence order (over original job ids; not necessarily
    /// covering every job of the instance — `SUU-T` runs one block at a
    /// time).
    chains: Vec<Vec<u32>>,
    assignment: Assignment,
    /// `d̂_j` per original job id (0 for jobs outside the chains).
    d: Vec<u64>,
    /// Long-job cutoff γ in supersteps.
    gamma: u64,
    /// Delay range `H` (assignment load).
    h_range: u64,
    long_job: Vec<bool>,
    cfg: ChainConfig,
    rng: SmallRng,
    fallback_budget: u64,
    name: String,

    // --- per-execution state ---
    mode: Mode,
    delays: Vec<u64>,
    /// Per chain: index of the current job.
    pos: Vec<usize>,
    /// Per chain: supersteps spent in the current block/pause.
    offset: Vec<u64>,
    superstep: u64,
    /// Long jobs whose pause started in the current segment.
    seg_long_jobs: Vec<u32>,
    long_sub: Option<SemPolicy>,
    /// Flattened real-step rows of the in-flight superstep.
    plan: Vec<Vec<Option<JobId>>>,
    plan_pos: usize,
    in_flight: bool,
    /// Whether this execution has been consulted yet (anchors
    /// `start_time` for sub-policies that begin mid-run, e.g. `SUU-T`
    /// blocks).
    started: bool,
    /// Absolute time of the first consultation.
    start_time: u64,
    /// Absolute time of the previous consultation (plan progress is
    /// `time`-driven: the plan cursor advances by the elapsed span).
    last_time: u64,
    stats: ChainStats,
}

impl ChainPolicy {
    /// Build `SUU-C` for the given chains (each a job-id list in precedence
    /// order). Jobs of the instance outside every chain are ignored.
    pub fn build(
        inst: Arc<SuuInstance>,
        chains: Vec<Vec<u32>>,
        cfg: ChainConfig,
    ) -> Result<Self, AlgoError> {
        let sol = solve_lp2(&inst, &chains, 1.0)?;
        let (assignment, _report) = round_lp2(&inst, &sol)?;
        Self::from_parts(inst, chains, assignment, sol.t_star, cfg)
    }

    /// Build from a precomputed rounded assignment and its fractional LP
    /// value, skipping the (expensive) LP2 solve. Lets callers amortize
    /// one LP solve across many Monte-Carlo policy instances.
    pub fn from_parts(
        inst: Arc<SuuInstance>,
        chains: Vec<Vec<u32>>,
        mut assignment: Assignment,
        t_star: f64,
        cfg: ChainConfig,
    ) -> Result<Self, AlgoError> {
        let n = inst.num_jobs();
        let m = inst.num_machines();
        for chain in &chains {
            for &j in chain {
                if j as usize >= n {
                    return Err(AlgoError::BadInput(format!("chain job {j} out of range")));
                }
            }
        }

        let nm_log = ((n + m).max(2) as f64).log2();
        let gamma = ((t_star / nm_log).floor() as u64).max(1);

        if cfg.coarsen {
            coarsen_assignment(&inst, &mut assignment, t_star);
        }

        let mut d = vec![0u64; n];
        let mut long_job = vec![false; n];
        for chain in &chains {
            for &j in chain {
                d[j as usize] = assignment.length(JobId(j)).max(1);
                long_job[j as usize] = d[j as usize] > gamma;
            }
        }

        let h_range = assignment.max_load();
        let fallback_budget = 1_000
            + cfg.fallback_factor
                * (t_star.ceil() as u64 + gamma + h_range + 1)
                * (nm_log.ceil() as u64 + 1);

        let num_chains = chains.len();
        Ok(ChainPolicy {
            inst,
            chains,
            assignment,
            d,
            gamma,
            h_range,
            long_job,
            cfg,
            rng: SmallRng::seed_from_u64(cfg.seed),
            fallback_budget,
            name: "SUU-C".to_string(),
            mode: Mode::Supersteps,
            delays: vec![0; num_chains],
            pos: vec![0; num_chains],
            offset: vec![0; num_chains],
            superstep: 0,
            seg_long_jobs: Vec::new(),
            long_sub: None,
            plan: Vec::new(),
            plan_pos: 0,
            in_flight: false,
            started: false,
            start_time: 0,
            last_time: 0,
            stats: ChainStats::default(),
        })
    }

    /// Long-job cutoff γ (supersteps).
    pub fn gamma(&self) -> u64 {
        self.gamma
    }

    /// Stats from the most recent execution.
    pub fn stats(&self) -> ChainStats {
        self.stats
    }

    /// Is chain `k` started (past its delay) and not exhausted?
    fn chain_active(&self, k: usize) -> bool {
        self.superstep >= self.delays[k] && self.pos[k] < self.chains[k].len()
    }

    /// Advance per-chain state at the end of a finished superstep.
    fn advance_chains(&mut self, remaining: &suu_core::BitSet) {
        for k in 0..self.chains.len() {
            if !self.chain_active(k) {
                continue;
            }
            // Skip any jobs that are already complete (long jobs finish
            // during their pause via the SemPolicy phase).
            let j = self.chains[k][self.pos[k]] as usize;
            self.offset[k] += 1;
            if self.long_job[j] {
                if self.offset[k] >= self.gamma && !remaining.contains(j as u32) {
                    self.pos[k] += 1;
                    self.offset[k] = 0;
                }
                // else: still pausing (or job unexpectedly incomplete —
                // keep pausing; the next segment boundary will run it).
            } else if self.offset[k] >= self.d[j] {
                if remaining.contains(j as u32) {
                    self.offset[k] = 0; // block failed: replay
                } else {
                    self.pos[k] += 1;
                    self.offset[k] = 0;
                }
            }
        }
        self.superstep += 1;
        self.stats.supersteps = self.superstep;
    }

    /// Build the flattened plan for the next superstep.
    fn plan_superstep(&mut self, remaining: &suu_core::BitSet) {
        let m = self.inst.num_machines();
        let mut machine_jobs: Vec<Vec<JobId>> = vec![Vec::new(); m];

        for k in 0..self.chains.len() {
            if !self.chain_active(k) {
                continue;
            }
            // Fast-forward past already-completed jobs at block start.
            while self.pos[k] < self.chains[k].len()
                && self.offset[k] == 0
                && !remaining.contains(self.chains[k][self.pos[k]])
            {
                self.pos[k] += 1;
            }
            if self.pos[k] >= self.chains[k].len() {
                continue;
            }
            let j = self.chains[k][self.pos[k]];
            if self.long_job[j as usize] {
                if self.offset[k] == 0 {
                    // Pause starts now: queue the long job for this
                    // segment's SemPolicy phase.
                    self.seg_long_jobs.push(j);
                }
                continue; // pauses occupy no machines
            }
            for &(i, x) in self.assignment.machines_for(JobId(j)) {
                if self.offset[k] < x {
                    machine_jobs[i as usize].push(JobId(j));
                }
            }
        }

        let congestion = machine_jobs.iter().map(Vec::len).max().unwrap_or(0) as u64;
        self.stats.max_congestion = self.stats.max_congestion.max(congestion);
        let rows = congestion.max(1) as usize;
        self.plan = (0..rows)
            .map(|r| {
                (0..m)
                    .map(|i| machine_jobs[i].get(r).copied())
                    .collect::<Vec<Option<JobId>>>()
            })
            .collect();
        self.plan_pos = 0;
        self.in_flight = true;
    }

    /// Gang-sequential fallback row: all machines on the first eligible
    /// remaining job.
    fn fallback_row(&self, view: &StateView<'_>, out: &mut Row) {
        let target = self
            .chains
            .iter()
            .flatten()
            .copied()
            .find(|&j| view.remaining.contains(j) && view.eligible.contains(j));
        out.fill(target.map(JobId));
    }

    /// Absolute time at which the bad-event fallback budget runs out.
    fn budget_deadline(&self) -> u64 {
        self.start_time.saturating_add(self.fallback_budget)
    }

    /// Cap a decision's wake-up at the budget deadline so the switch to
    /// fallback mode happens at the same absolute step under both the
    /// dense and the event engine.
    fn cap_to_budget(&self, d: Decision) -> Decision {
        if self.mode == Mode::Fallback {
            return d;
        }
        let deadline = self.budget_deadline();
        match d.next_wakeup {
            Some(w) => Decision::wake_at(w.min(deadline)),
            None => Decision::wake_at(deadline),
        }
    }

    fn my_jobs_done(&self, remaining: &suu_core::BitSet) -> bool {
        self.chains
            .iter()
            .flatten()
            .all(|&j| !remaining.contains(j))
    }
}

/// Coarsen: round each `x̂_ij` down to a multiple of `t*/(nm)` and restore
/// any lost mass with extra steps on the job's best machine (the paper's
/// "reinserted steps", folded into the job's own block).
fn coarsen_assignment(inst: &SuuInstance, assignment: &mut Assignment, t_star: f64) {
    let n = inst.num_jobs();
    let m = inst.num_machines();
    let mult = ((t_star / (n * m) as f64).floor() as u64).max(1);
    if mult == 1 {
        return; // t_LP2 already polynomial in n, m: nothing to do
    }
    let mut replacement = Assignment::new(m, n);
    for j in 0..n as u32 {
        let job = JobId(j);
        let mut lost = 0.0f64;
        for &(i, x) in assignment.machines_for(job) {
            let floored = x / mult * mult;
            if floored > 0 {
                replacement.add(MachineId(i), job, floored);
            }
            lost += (x - floored) as f64 * inst.ell(MachineId(i), job);
        }
        if lost > 0.0 {
            let best = inst.best_machine(job);
            let per_step = inst.ell(best, job);
            let extra = (lost / per_step).ceil() as u64;
            replacement.add(best, job, extra.max(1));
        }
    }
    *assignment = replacement;
}

impl Policy for ChainPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn reseed(&mut self, seed: u64) {
        // Mix the configured base seed so two specs with different `seed`
        // parameters stay distinguishable under the same trial stream.
        self.rng = SmallRng::seed_from_u64(seed ^ self.cfg.seed.rotate_left(32));
    }

    fn reset(&mut self) {
        self.mode = Mode::Supersteps;
        self.delays = (0..self.chains.len())
            .map(|_| {
                if self.cfg.use_random_delay && self.h_range > 0 {
                    self.rng.random_range(0..=self.h_range)
                } else {
                    0
                }
            })
            .collect();
        self.pos.iter_mut().for_each(|p| *p = 0);
        self.offset.iter_mut().for_each(|o| *o = 0);
        self.superstep = 0;
        self.seg_long_jobs.clear();
        self.long_sub = None;
        self.plan.clear();
        self.plan_pos = 0;
        self.in_flight = false;
        self.started = false;
        self.start_time = 0;
        self.last_time = 0;
        self.stats = ChainStats::default();
    }

    fn decide(&mut self, view: &StateView<'_>, out: &mut Row) -> Decision {
        let t = view.time;
        if !self.started {
            self.started = true;
            self.start_time = t;
            self.last_time = t;
        }
        let dt = t - self.last_time;
        self.last_time = t;
        // Plan progress is time-driven: the steps since the previous
        // consultation were spent playing the current plan iff we were in
        // superstep mode (mode changes only happen inside `decide`, so
        // the whole span belongs to one mode).
        if self.mode == Mode::Supersteps {
            self.plan_pos += dt as usize;
        }

        if self.my_jobs_done(view.remaining) {
            return Decision::HOLD;
        }
        // The Theorem-9 "bad event" budget, at epoch granularity: every
        // non-fallback decision's wake-up is capped at the budget
        // deadline (`cap_to_budget`), so both engines consult us at that
        // exact step and flip together.
        if self.mode != Mode::Fallback && t >= self.budget_deadline() {
            self.mode = Mode::Fallback;
            self.stats.fallback_triggered = true;
        }

        loop {
            match self.mode {
                Mode::Fallback => {
                    // Pure function of the remaining/eligible sets.
                    self.fallback_row(view, out);
                    return Decision::HOLD;
                }
                Mode::LongJobs => {
                    let done = self
                        .long_sub
                        .as_ref()
                        .is_none_or(|s| s.is_done(view.remaining));
                    if done {
                        self.long_sub = None;
                        self.mode = Mode::Supersteps;
                        continue;
                    }
                    let d = self
                        .long_sub
                        .as_mut()
                        .expect("sub-policy present")
                        .decide(view, out);
                    return self.cap_to_budget(d);
                }
                Mode::Supersteps => {
                    if self.plan_pos < self.plan.len() {
                        out.copy_from_row(&self.plan[self.plan_pos]);
                        // Hold through identical consecutive plan rows;
                        // the wake-up chain lands us exactly on the next
                        // distinct row or the superstep boundary.
                        let mut run = 1;
                        while self.plan_pos + run < self.plan.len()
                            && self.plan[self.plan_pos + run] == self.plan[self.plan_pos]
                        {
                            run += 1;
                        }
                        return self.cap_to_budget(Decision::wake_at(t + run as u64));
                    }
                    // Superstep boundary.
                    if self.in_flight {
                        self.in_flight = false;
                        self.advance_chains(view.remaining);
                    }
                    // Segment boundary: run this segment's long jobs.
                    if self.superstep > 0
                        && self.superstep.is_multiple_of(self.gamma)
                        && !self.seg_long_jobs.is_empty()
                    {
                        let batch: Vec<u32> = std::mem::take(&mut self.seg_long_jobs)
                            .into_iter()
                            .filter(|&j| view.remaining.contains(j))
                            .collect();
                        if !batch.is_empty() {
                            let mut sub = SemPolicy::for_jobs(self.inst.clone(), Some(batch))
                                .expect("sub-policy construction is infallible");
                            sub.reset();
                            self.long_sub = Some(sub);
                            self.stats.long_job_phases += 1;
                            self.mode = Mode::LongJobs;
                            continue;
                        }
                    }
                    self.plan_superstep(view.remaining);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::{workload, Precedence};
    use suu_dag::{generators, ChainSet};
    use suu_sim::{execute, ExecConfig};

    fn chain_instance(
        seed: u64,
        m: usize,
        n: usize,
        num_chains: usize,
    ) -> (Arc<SuuInstance>, Vec<Vec<u32>>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let cs = generators::random_chain_set(n, num_chains, &mut rng);
        let chains = cs.chains().to_vec();
        let inst = workload::uniform_unrelated(m, n, 0.2, 0.95, Precedence::Chains(cs), &mut rng);
        (Arc::new(inst), chains)
    }

    #[test]
    fn completes_random_chain_instances() {
        for seed in 0..5u64 {
            let (inst, chains) = chain_instance(seed, 3, 10, 3);
            let mut policy =
                ChainPolicy::build(inst.clone(), chains, ChainConfig::default()).unwrap();
            let out = execute(&inst, &mut policy, &ExecConfig::default(), seed + 100);
            assert!(out.completed, "seed {seed}");
            assert_eq!(out.ineligible_assignments, 0, "seed {seed}");
            assert!(policy.stats().supersteps > 0);
        }
    }

    #[test]
    fn deterministic_chain_completes_quickly() {
        // q = 0: each block succeeds first try.
        let cs = ChainSet::new(6, vec![vec![0, 1, 2], vec![3, 4, 5]]).unwrap();
        let chains = cs.chains().to_vec();
        let inst = Arc::new(workload::deterministic(2, 6, Precedence::Chains(cs)));
        let cfg = ChainConfig {
            use_random_delay: false,
            ..ChainConfig::default()
        };
        let mut policy = ChainPolicy::build(inst.clone(), chains, cfg).unwrap();
        let out = execute(&inst, &mut policy, &ExecConfig::default(), 1);
        assert!(out.completed);
        assert!(!policy.stats().fallback_triggered);
    }

    #[test]
    fn random_delay_reduces_congestion_on_many_chains() {
        // Many parallel chains hammering few machines: delays must not
        // *increase* worst congestion, and typically decrease it.
        let (inst, chains) = chain_instance(77, 2, 40, 20);
        let run = |use_delay: bool| {
            let cfg = ChainConfig {
                use_random_delay: use_delay,
                seed: 5,
                ..ChainConfig::default()
            };
            let mut policy = ChainPolicy::build(inst.clone(), chains.clone(), cfg).unwrap();
            let out = execute(&inst, &mut policy, &ExecConfig::default(), 9);
            assert!(out.completed);
            policy.stats().max_congestion
        };
        let with_delay = run(true);
        let without_delay = run(false);
        assert!(
            with_delay <= without_delay,
            "delays should not worsen congestion: {with_delay} vs {without_delay}"
        );
    }

    #[test]
    fn long_jobs_trigger_sem_phases() {
        // One job far harder than the rest forces a long block.
        let n = 8;
        let m = 2;
        let mut q = vec![0.5; m * n];
        // Job 0 is nearly impossible per step: q = 0.999 on every machine
        // (ell ≈ 0.00144, so it needs ~700 steps of mass for target 1).
        for i in 0..m {
            q[i * n] = 0.999;
        }
        let cs = ChainSet::new(n, vec![(0..n as u32).collect()]).unwrap();
        let chains = cs.chains().to_vec();
        let inst = Arc::new(SuuInstance::new(m, n, q, Precedence::Chains(cs)).unwrap());
        let mut policy = ChainPolicy::build(inst.clone(), chains, ChainConfig::default()).unwrap();
        assert!(policy.gamma() >= 1);
        let out = execute(&inst, &mut policy, &ExecConfig::default(), 3);
        assert!(out.completed);
        assert!(
            policy.stats().long_job_phases > 0,
            "expected at least one long-job phase (gamma = {})",
            policy.gamma()
        );
    }

    #[test]
    fn coarsening_preserves_completion() {
        let (inst, chains) = chain_instance(5, 3, 8, 2);
        let cfg = ChainConfig {
            coarsen: true,
            ..ChainConfig::default()
        };
        let mut policy = ChainPolicy::build(inst.clone(), chains, cfg).unwrap();
        let out = execute(&inst, &mut policy, &ExecConfig::default(), 4);
        assert!(out.completed);
    }

    #[test]
    fn subset_chains_leave_other_jobs_alone() {
        // Chains cover only jobs 0..4 of 6; jobs 4,5 are never scheduled.
        let inst = Arc::new(workload::homogeneous(2, 6, 0.5, Precedence::Independent));
        let chains = vec![vec![0u32, 1], vec![2, 3]];
        let mut policy = ChainPolicy::build(inst.clone(), chains, ChainConfig::default()).unwrap();
        policy.reset();
        let remaining = suu_core::BitSet::full(6);
        let eligible = suu_core::BitSet::full(6);
        let mut row = Row::new(2);
        for t in 0..200 {
            let view = StateView {
                time: t,
                epoch: 0,
                remaining: &remaining,
                eligible: &eligible,
                n: 6,
                m: 2,
            };
            row.clear();
            policy.decide(&view, &mut row);
            for j in row.slots().iter().flatten() {
                assert!(j.0 < 4, "scheduled job outside chains: {j:?}");
            }
        }
    }

    #[test]
    fn stats_reset_between_runs() {
        let (inst, chains) = chain_instance(2, 2, 6, 2);
        let mut policy = ChainPolicy::build(inst.clone(), chains, ChainConfig::default()).unwrap();
        let _ = execute(&inst, &mut policy, &ExecConfig::default(), 8);
        let first = policy.stats().supersteps;
        assert!(first > 0);
        policy.reset();
        assert_eq!(policy.stats().supersteps, 0);
    }
}
