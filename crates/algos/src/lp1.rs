//! The (LP1) relaxation (paper §3).
//!
//! ```text
//! (LP1)  min t
//!        s.t.  Σ_i ℓ'_ij x_ij >= L      ∀ j ∈ J'     (mass)
//!              Σ_j x_ij       <= t      ∀ i ∈ M      (load)
//!              x_ij >= 0
//! ```
//!
//! with `ℓ'_ij = min(ℓ_ij, L)` — clamping is WLOG for integral solutions
//! and tightens the relaxation (Lemma 2). The integrality constraint of the
//! paper's ILP is dropped here; [`crate::rounding`] restores it.
//!
//! Variables with `ℓ_ij = 0` (machine `i` can never advance job `j`) are
//! omitted: they could only add load.

use crate::AlgoError;
use suu_core::logmass::clamped;
use suu_core::{JobId, MachineId, SuuInstance};
use suu_lp::{Cmp, LpBuilder, LpStatus};

/// Fractional solution of `LP1(J', L)`.
#[derive(Debug, Clone)]
pub struct Lp1Solution {
    /// The optimal (fractional) makespan bound `t*`.
    pub t_star: f64,
    /// Jobs of `J'`, in the order used by [`Lp1Solution::x_for`].
    pub jobs: Vec<u32>,
    /// The mass target `L`.
    pub target: f64,
    /// Sparse solution: for each position `p` in `jobs`, the list of
    /// `(machine, x*_ij)` with `x > 0`.
    x: Vec<Vec<(u32, f64)>>,
}

impl Lp1Solution {
    /// Positive `(machine, x*)` pairs for the `p`-th job of `J'`.
    pub fn x_for(&self, p: usize) -> &[(u32, f64)] {
        &self.x[p]
    }
}

/// Solve the fractional `LP1(J', L)` for the given job subset.
///
/// `jobs` must be non-empty and each listed job must have a machine with
/// positive log failure (guaranteed by [`SuuInstance`] validation).
pub fn solve_lp1(inst: &SuuInstance, jobs: &[u32], target: f64) -> Result<Lp1Solution, AlgoError> {
    assert!(target > 0.0, "mass target must be positive");
    if jobs.is_empty() {
        return Ok(Lp1Solution {
            t_star: 0.0,
            jobs: Vec::new(),
            target,
            x: Vec::new(),
        });
    }
    let m = inst.num_machines();
    let mut lp = LpBuilder::minimize();
    let t = lp.add_var(1.0);

    // Variable per (machine, job) pair with positive clamped coefficient.
    // var_ids[p] lists (machine, VarId, ell') for job jobs[p].
    let mut var_ids: Vec<Vec<(u32, suu_lp::VarId, f64)>> = Vec::with_capacity(jobs.len());
    for &j in jobs {
        let mut row = Vec::new();
        for i in 0..m as u32 {
            let ell = inst.ell(MachineId(i), JobId(j));
            if ell > 0.0 {
                let ellp = clamped(ell, target);
                row.push((i, lp.add_var(0.0), ellp));
            }
        }
        debug_assert!(!row.is_empty(), "unservable job {j} escaped validation");
        var_ids.push(row);
    }

    // Mass constraints.
    for row in &var_ids {
        let terms: Vec<_> = row.iter().map(|&(_, v, e)| (v, e)).collect();
        lp.add_constraint(&terms, Cmp::Ge, target);
    }

    // Load constraints: Σ_j x_ij - t <= 0.
    let mut per_machine: Vec<Vec<(suu_lp::VarId, f64)>> = vec![Vec::new(); m];
    for row in &var_ids {
        for &(i, v, _) in row {
            per_machine[i as usize].push((v, 1.0));
        }
    }
    for mut terms in per_machine {
        if terms.is_empty() {
            continue;
        }
        terms.push((t, -1.0));
        lp.add_constraint(&terms, Cmp::Le, 0.0);
    }

    let sol = lp.solve()?;
    match sol.status {
        LpStatus::Optimal => {}
        LpStatus::Infeasible => return Err(AlgoError::UnexpectedLpStatus("LP1 infeasible")),
        LpStatus::Unbounded => return Err(AlgoError::UnexpectedLpStatus("LP1 unbounded")),
    }

    let x = var_ids
        .iter()
        .map(|row| {
            row.iter()
                .filter_map(|&(i, v, _)| {
                    let val = sol.value(v);
                    (val > 1e-12).then_some((i, val))
                })
                .collect()
        })
        .collect();

    Ok(Lp1Solution {
        t_star: sol.objective,
        jobs: jobs.to_vec(),
        target,
        x,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::{workload, Precedence};

    #[test]
    fn empty_jobs_trivial() {
        let inst = workload::homogeneous(2, 2, 0.5, Precedence::Independent);
        let sol = solve_lp1(&inst, &[], 0.5).unwrap();
        assert_eq!(sol.t_star, 0.0);
    }

    #[test]
    fn single_job_single_machine() {
        // q = 0.5 -> ell = 1, clamped to L = 0.5; need 0.5/0.5 = 1 step.
        let inst = workload::homogeneous(1, 1, 0.5, Precedence::Independent);
        let sol = solve_lp1(&inst, &[0], 0.5).unwrap();
        assert!((sol.t_star - 1.0).abs() < 1e-6, "t* = {}", sol.t_star);
    }

    #[test]
    fn unclamped_when_target_large() {
        // L = 4, ell = 1: need 4 steps of the single machine per job; two
        // jobs -> t* = 8.
        let inst = workload::homogeneous(1, 2, 0.5, Precedence::Independent);
        let sol = solve_lp1(&inst, &[0, 1], 4.0).unwrap();
        assert!((sol.t_star - 8.0).abs() < 1e-6);
    }

    #[test]
    fn load_balances_across_machines() {
        // 2 identical machines, 2 jobs, L = 1, ell = 1: t* = 1 (one job per
        // machine).
        let inst = workload::homogeneous(2, 2, 0.5, Precedence::Independent);
        let sol = solve_lp1(&inst, &[0, 1], 1.0).unwrap();
        assert!((sol.t_star - 1.0).abs() < 1e-6);
    }

    #[test]
    fn subset_only_covers_listed_jobs() {
        let inst = workload::homogeneous(1, 3, 0.5, Precedence::Independent);
        let sol = solve_lp1(&inst, &[2], 1.0).unwrap();
        assert_eq!(sol.jobs, vec![2]);
        assert!((sol.t_star - 1.0).abs() < 1e-6);
        assert_eq!(sol.x_for(0).len(), 1);
    }

    #[test]
    fn zero_ell_machines_excluded() {
        // Machine 1 has q = 1 for all jobs: never used.
        let inst =
            suu_core::SuuInstance::new(2, 2, vec![0.5, 0.5, 1.0, 1.0], Precedence::Independent)
                .unwrap();
        let sol = solve_lp1(&inst, &[0, 1], 1.0).unwrap();
        for p in 0..2 {
            for &(i, _) in sol.x_for(p) {
                assert_eq!(i, 0, "machine 1 must not appear");
            }
        }
    }
}
