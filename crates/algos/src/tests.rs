//! Cross-module tests: algorithms vs exact OPT, property tests on the
//! rounding guarantees, end-to-end approximation sanity.

use crate::baselines::GangSequentialPolicy;
use crate::bounds::lower_bound;
use crate::opt::{exact_opt, OptLimits};
use crate::suu_c::{ChainConfig, ChainPolicy};
use crate::suu_i_obl::OblPolicy;
use crate::suu_i_sem::SemPolicy;
use crate::suu_t::ForestPolicy;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;
use suu_core::{workload, Precedence};
use suu_dag::generators;
use suu_sim::{EvalConfig, Evaluator, ExecConfig, Semantics};

fn mc(trials: usize, seed: u64) -> Evaluator {
    Evaluator::new(EvalConfig {
        trials,
        master_seed: seed,
        threads: 4,
        exec: ExecConfig {
            semantics: Semantics::SuuStar,
            max_steps: 5_000_000,
            ..ExecConfig::default()
        },
        ..EvalConfig::default()
    })
}

fn mean(report: &suu_sim::EvalReport) -> f64 {
    assert!(report.all_completed(), "all trials complete");
    report.mean_makespan()
}

#[test]
fn sem_beats_or_matches_gang_on_parallel_workload() {
    // Many independent jobs + many machines: LP-driven parallelism should
    // crush the sequential gang baseline.
    let mut rng = SmallRng::seed_from_u64(21);
    let inst = Arc::new(workload::uniform_unrelated(
        8,
        32,
        0.05,
        0.5,
        Precedence::Independent,
        &mut rng,
    ));
    let sem = mean(&mc(40, 1).run(&inst, || SemPolicy::build(inst.clone()).unwrap()));
    let gang = mean(&mc(40, 1).run(&inst, GangSequentialPolicy::new));
    assert!(
        sem < gang * 0.6,
        "SEM ({sem:.1}) should clearly beat gang-sequential ({gang:.1})"
    );
}

#[test]
fn sem_vs_exact_opt_small() {
    // On tiny instances the measured E[T_SEM] must stay within a modest
    // constant of the exact optimum.
    for seed in 0..6u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let inst = Arc::new(workload::uniform_unrelated(
            2,
            4,
            0.3,
            0.9,
            Precedence::Independent,
            &mut rng,
        ));
        let opt = exact_opt(&inst, OptLimits::default()).unwrap();
        let sem = mean(&mc(200, seed).run(&inst, || SemPolicy::build(inst.clone()).unwrap()));
        assert!(
            sem <= 12.0 * opt + 2.0,
            "seed {seed}: SEM {sem:.2} vs OPT {opt:.2}"
        );
        assert!(
            sem >= opt - 0.35,
            "seed {seed}: SEM {sem:.2} below OPT {opt:.2}?"
        );
    }
}

#[test]
fn obl_vs_sem_consistency() {
    // Both complete; SEM should not be wildly worse than OBL anywhere.
    let mut rng = SmallRng::seed_from_u64(33);
    let inst = Arc::new(workload::power_law_difficulty(
        4,
        12,
        0.5,
        1.1,
        Precedence::Independent,
        &mut rng,
    ));
    let obl = mean(&mc(60, 2).run(&inst, || OblPolicy::build(&inst).unwrap()));
    let sem = mean(&mc(60, 2).run(&inst, || SemPolicy::build(inst.clone()).unwrap()));
    assert!(sem <= 3.0 * obl + 5.0, "SEM {sem:.1} vs OBL {obl:.1}");
}

#[test]
fn chains_respect_lower_bound() {
    let mut rng = SmallRng::seed_from_u64(44);
    let cs = generators::random_chain_set(12, 4, &mut rng);
    let chains = cs.chains().to_vec();
    let inst = Arc::new(workload::uniform_unrelated(
        3,
        12,
        0.3,
        0.9,
        Precedence::Chains(cs),
        &mut rng,
    ));
    let lb = lower_bound(&inst).unwrap();
    let measured = mean(&mc(40, 3).run(&inst, || {
        ChainPolicy::build(inst.clone(), chains.clone(), ChainConfig::default()).unwrap()
    }));
    assert!(
        measured >= lb - 0.5,
        "measured {measured:.2} below lower bound {lb:.2}"
    );
}

#[test]
fn forest_policy_completes_mapreduce_like_forest() {
    // A star out-forest approximates a map stage fanning into reducers.
    let forest = generators::caterpillar(4, 3);
    let n = forest.num_vertices();
    let mut rng = SmallRng::seed_from_u64(55);
    let inst = Arc::new(workload::uniform_unrelated(
        4,
        n,
        0.3,
        0.9,
        Precedence::Forest(forest.clone()),
        &mut rng,
    ));
    let report = mc(20, 4).run(&inst, || {
        ForestPolicy::build(inst.clone(), &forest, ChainConfig::default()).unwrap()
    });
    assert!(report.all_completed());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn rounding_guarantees_hold_on_arbitrary_instances(
        seed in 0u64..10_000,
        n in 2usize..10,
        m in 1usize..6,
        qmin in 0.05f64..0.5,
        spread in 0.1f64..0.45,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let inst = workload::uniform_unrelated(
            m, n, qmin, qmin + spread, Precedence::Independent, &mut rng);
        let jobs: Vec<u32> = (0..n as u32).collect();
        for target in [0.5, 2.0] {
            let sol = crate::lp1::solve_lp1(&inst, &jobs, target).unwrap();
            let (_, report) = crate::rounding::round_lp1(&inst, &sol).unwrap();
            prop_assert!(report.min_clamped_mass >= target - 1e-9);
            prop_assert!(report.max_load <= report.load_cap);
        }
    }

    #[test]
    fn policies_always_terminate(
        seed in 0u64..10_000,
        n in 1usize..8,
        m in 1usize..4,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let inst = Arc::new(workload::uniform_unrelated(
            m, n, 0.1, 0.95, Precedence::Independent, &mut rng));
        let report = mc(5, seed).run(&inst, || SemPolicy::build(inst.clone()).unwrap());
        prop_assert!(report.all_completed());
    }
}

#[test]
fn lower_bound_below_every_policy_mean() {
    let mut rng = SmallRng::seed_from_u64(66);
    let inst = Arc::new(workload::volunteer_grid(
        6,
        10,
        0.3,
        0.1,
        0.9,
        Precedence::Independent,
        &mut rng,
    ));
    let lb = lower_bound(&inst).unwrap();
    let sem = mean(&mc(60, 5).run(&inst, || SemPolicy::build(inst.clone()).unwrap()));
    // Sampling noise allowance.
    assert!(sem >= lb - 0.5, "SEM mean {sem:.2} below LB {lb:.2}");
}
