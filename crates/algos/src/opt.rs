//! Exact expected-makespan optimum for tiny instances.
//!
//! SUU is NP-hard in general (Malewicz), but for tiny `n`/`m` the optimal
//! adaptive schedule can be computed exactly: the problem is a Markov
//! decision process whose states are the *down-closed* sets of remaining
//! jobs (completed jobs are closed under predecessors) and whose actions
//! assign each machine to an eligible job. Because transitions only remove
//! jobs, the Bellman recursion solves in one pass over states by
//! increasing cardinality:
//!
//! ```text
//! V(S) = min_a  (1 + Σ_{∅ ≠ C ⊆ touched(a)} P_a(C) · V(S \ C)) / (1 − P_a(∅))
//! ```
//!
//! where `P_a(C)` is the probability exactly the jobs in `C` complete.
//! `V(J)` is `E[T_OPT]` — the denominator every approximation-ratio
//! experiment (`fig_opt_small`) divides by.

use suu_core::{JobId, MachineId, SuuInstance};

/// Resource limits for the exact solver.
#[derive(Debug, Clone, Copy)]
pub struct OptLimits {
    /// Maximum number of jobs (state space `2^n`).
    pub max_jobs: usize,
    /// Abort if the total work estimate (state-action-outcome triples)
    /// exceeds this.
    pub max_ops: u64,
}

impl Default for OptLimits {
    fn default() -> Self {
        OptLimits {
            max_jobs: 14,
            max_ops: 400_000_000,
        }
    }
}

/// Exact `E[T_OPT]`, or `None` if the instance exceeds `limits`.
pub fn exact_opt(inst: &SuuInstance, limits: OptLimits) -> Option<f64> {
    solve_dp(inst, limits, false).map(|dp| dp.value)
}

/// The Bellman solve's output: the optimal value, plus (when requested)
/// the argmax action per reachable remaining-set state.
struct DpSolution {
    /// `V(J)` — the optimal expected makespan.
    value: f64,
    /// For each remaining-set mask: one job choice per machine. Only
    /// populated when actions were recorded.
    actions: std::collections::HashMap<u32, Vec<Option<usize>>>,
}

fn solve_dp(inst: &SuuInstance, limits: OptLimits, record_actions: bool) -> Option<DpSolution> {
    let n = inst.num_jobs();
    let m = inst.num_machines();
    if n == 0 {
        return Some(DpSolution {
            value: 0.0,
            actions: Default::default(),
        });
    }
    if n > limits.max_jobs || n > 24 {
        return None;
    }
    let dag = inst.precedence().to_dag(n);

    // Bit masks of predecessors/successors per job.
    let mut preds = vec![0u32; n];
    let mut succs = vec![0u32; n];
    for v in 0..n as u32 {
        for &u in dag.predecessors(v) {
            preds[v as usize] |= 1 << u;
        }
        for &w in dag.successors(v) {
            succs[v as usize] |= 1 << w;
        }
    }

    // Per (machine, job): success probability when that machine alone runs
    // the job for one step.
    let q = |i: usize, j: usize| inst.q(MachineId(i as u32), JobId(j as u32));

    let full: u32 = if n == 32 { u32::MAX } else { (1 << n) - 1 };
    let mut value = vec![f64::INFINITY; (full as usize) + 1];
    value[0] = 0.0;
    let mut actions: std::collections::HashMap<u32, Vec<Option<usize>>> = Default::default();

    // States sorted by popcount so dependencies are ready.
    let mut states: Vec<u32> = (1..=full)
        .filter(|&mask| {
            // Valid iff remaining set is successor-closed: j remaining ⇒
            // all successors remaining.
            (0..n).all(|j| mask >> j & 1 == 0 || (succs[j] & !mask) == 0)
        })
        .collect();
    states.sort_by_key(|s| s.count_ones());

    let mut ops: u64 = 0;

    for &mask in &states {
        // Eligible jobs: remaining with all predecessors done.
        let eligible: Vec<usize> = (0..n)
            .filter(|&j| mask >> j & 1 == 1 && (preds[j] & mask) == 0)
            .collect();
        debug_assert!(!eligible.is_empty(), "nonempty valid state has a source");

        // Per machine: the eligible jobs it can actually help (q < 1).
        let choices: Vec<Vec<usize>> = (0..m)
            .map(|i| {
                eligible
                    .iter()
                    .copied()
                    .filter(|&j| q(i, j) < 1.0)
                    .collect::<Vec<_>>()
            })
            .collect();
        // A machine with no useful job idles; drop it from enumeration.
        let active: Vec<usize> = (0..m).filter(|&i| !choices[i].is_empty()).collect();
        if active.is_empty() {
            return None; // cannot make progress — malformed instance
        }

        let num_actions: u64 = active
            .iter()
            .map(|&i| choices[i].len() as u64)
            .try_fold(1u64, |a, b| a.checked_mul(b))?;
        ops = ops.checked_add(num_actions.checked_mul(1 << active.len().min(20))?)?;
        if ops > limits.max_ops {
            return None;
        }

        // Mixed-radix enumeration of actions.
        let mut counter = vec![0usize; active.len()];
        let mut best = f64::INFINITY;
        let mut best_counter: Vec<usize> = counter.clone();
        loop {
            // Failure probability per touched job under this action.
            let mut fail: Vec<(usize, f64)> = Vec::with_capacity(active.len());
            for (slot, &i) in active.iter().enumerate() {
                let j = choices[i][counter[slot]];
                match fail.iter_mut().find(|(jj, _)| *jj == j) {
                    Some((_, f)) => *f *= q(i, j),
                    None => fail.push((j, q(i, j))),
                }
            }
            // Expected value: enumerate completion subsets of touched jobs.
            let t = fail.len();
            let mut expectation = 0.0f64; // Σ_{C≠∅} P(C) V(S\C)
            let mut p_nothing = 0.0f64;
            for sub in 0u32..(1 << t) {
                let mut p = 1.0f64;
                let mut removed = 0u32;
                for (b, &(j, f)) in fail.iter().enumerate() {
                    if sub >> b & 1 == 1 {
                        p *= 1.0 - f;
                        removed |= 1 << j;
                    } else {
                        p *= f;
                    }
                }
                if p == 0.0 {
                    continue;
                }
                if sub == 0 {
                    p_nothing = p;
                } else {
                    expectation += p * value[(mask & !removed) as usize];
                }
            }
            if p_nothing < 1.0 {
                let v = (1.0 + expectation) / (1.0 - p_nothing);
                if v < best {
                    best = v;
                    best_counter.copy_from_slice(&counter);
                }
            }

            // Increment counter.
            let mut carry = 0;
            loop {
                if carry == active.len() {
                    break;
                }
                counter[carry] += 1;
                if counter[carry] < choices[active[carry]].len() {
                    break;
                }
                counter[carry] = 0;
                carry += 1;
            }
            if carry == active.len() {
                break;
            }
        }
        value[mask as usize] = best;
        if record_actions && best.is_finite() {
            let mut row: Vec<Option<usize>> = vec![None; m];
            for (slot, &i) in active.iter().enumerate() {
                row[i] = Some(choices[i][best_counter[slot]]);
            }
            actions.insert(mask, row);
        }
    }

    Some(DpSolution {
        value: value[full as usize],
        actions,
    })
}

/// The optimal schedule itself, executable: a stationary policy replaying
/// the Bellman DP's argmax action for every reachable remaining-set state.
///
/// Only available where [`exact_opt`] is (tiny instances). This is what
/// the registry exposes as `"exact-opt"`, letting the Monte-Carlo harness
/// race approximation algorithms against the true optimum — and letting
/// tests cross-check the simulated mean against the DP's closed-form
/// [`OptPolicy::expected_makespan`].
pub struct OptPolicy {
    actions: std::collections::HashMap<u32, Vec<Option<usize>>>,
    expected: f64,
}

impl OptPolicy {
    /// Solve the MDP and capture its optimal actions, or `None` if the
    /// instance exceeds `limits`.
    pub fn build(inst: &SuuInstance, limits: OptLimits) -> Option<Self> {
        let dp = solve_dp(inst, limits, true)?;
        Some(OptPolicy {
            actions: dp.actions,
            expected: dp.value,
        })
    }

    /// The DP's exact `E[T_OPT]` for the instance this policy was built on.
    pub fn expected_makespan(&self) -> f64 {
        self.expected
    }
}

impl suu_sim::Policy for OptPolicy {
    fn name(&self) -> &str {
        "exact-opt"
    }

    fn reset(&mut self) {}

    fn decide(
        &mut self,
        view: &suu_sim::StateView<'_>,
        out: &mut suu_sim::Assignment,
    ) -> suu_sim::Decision {
        let mut mask = 0u32;
        for j in view.remaining.iter() {
            mask |= 1 << j;
        }
        // Stationary: the action depends only on the remaining set, so
        // hold it until the next completion. (Unknown states are
        // unreachable for engine-produced views; idle safely.)
        if let Some(row) = self.actions.get(&mask) {
            for (i, slot) in row.iter().enumerate() {
                out.set_slot(i, slot.map(|j| JobId(j as u32)));
            }
        }
        suu_sim::Decision::HOLD
    }

    /// The MDP's optimal action is a pure function of the remaining set
    /// (that *is* the DP state), so the batched engine may share one
    /// lookup per distinct remaining set across a whole trial batch.
    fn is_stationary(&self) -> bool {
        true
    }
}

/// Exact expected makespan of a **stationary** policy: one whose machine
/// assignment depends only on the set of remaining jobs (gang-sequential,
/// best-machine and the greedy baselines qualify; time-varying policies
/// like round-robin or the round-based schedules do not).
///
/// `assign` receives the remaining-set bitmask and the eligible job list
/// and returns one job choice per machine (indices into `0..n`). Returns
/// `None` if the instance exceeds `limits` or if the policy stalls (zero
/// progress probability in a reachable state — e.g. only `q = 1` pairs
/// assigned).
pub fn evaluate_stationary<F>(inst: &SuuInstance, limits: OptLimits, mut assign: F) -> Option<f64>
where
    F: FnMut(u32, &[usize]) -> Vec<Option<usize>>,
{
    let n = inst.num_jobs();
    let m = inst.num_machines();
    if n == 0 {
        return Some(0.0);
    }
    if n > limits.max_jobs || n > 24 {
        return None;
    }
    let dag = inst.precedence().to_dag(n);
    let mut preds = vec![0u32; n];
    let mut succs = vec![0u32; n];
    for v in 0..n as u32 {
        for &u in dag.predecessors(v) {
            preds[v as usize] |= 1 << u;
        }
        for &w in dag.successors(v) {
            succs[v as usize] |= 1 << w;
        }
    }
    let q = |i: usize, j: usize| inst.q(MachineId(i as u32), JobId(j as u32));

    let full: u32 = if n == 32 { u32::MAX } else { (1 << n) - 1 };
    let mut value = vec![f64::INFINITY; (full as usize) + 1];
    value[0] = 0.0;

    let mut states: Vec<u32> = (1..=full)
        .filter(|&mask| (0..n).all(|j| mask >> j & 1 == 0 || (succs[j] & !mask) == 0))
        .collect();
    states.sort_by_key(|s| s.count_ones());

    for &mask in &states {
        let eligible: Vec<usize> = (0..n)
            .filter(|&j| mask >> j & 1 == 1 && (preds[j] & mask) == 0)
            .collect();
        let choice = assign(mask, &eligible);
        assert_eq!(choice.len(), m, "policy returned wrong row width");

        // Per touched job: failure probability under this assignment.
        let mut fail: Vec<(usize, f64)> = Vec::new();
        for (i, slot) in choice.iter().enumerate() {
            let Some(j) = *slot else { continue };
            if mask >> j & 1 == 0 || (preds[j] & mask) != 0 {
                continue; // completed or ineligible: machine idles
            }
            match fail.iter_mut().find(|(jj, _)| *jj == j) {
                Some((_, f)) => *f *= q(i, j),
                None => fail.push((j, q(i, j))),
            }
        }
        let t = fail.len();
        let mut expectation = 0.0f64;
        let mut p_nothing = 0.0f64;
        for sub in 0u32..(1 << t) {
            let mut p = 1.0f64;
            let mut removed = 0u32;
            for (b, &(j, f)) in fail.iter().enumerate() {
                if sub >> b & 1 == 1 {
                    p *= 1.0 - f;
                    removed |= 1 << j;
                } else {
                    p *= f;
                }
            }
            if p == 0.0 {
                continue;
            }
            if sub == 0 {
                p_nothing = p;
            } else {
                expectation += p * value[(mask & !removed) as usize];
            }
        }
        if p_nothing >= 1.0 {
            return None; // policy makes no progress from this state
        }
        value[mask as usize] = (1.0 + expectation) / (1.0 - p_nothing);
    }

    Some(value[full as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use suu_core::{workload, Precedence, SuuInstance};
    use suu_dag::ChainSet;

    fn opt(inst: &SuuInstance) -> f64 {
        exact_opt(inst, OptLimits::default()).expect("within limits")
    }

    #[test]
    fn single_job_single_machine_geometric() {
        // E[T] = 1 / (1 - q).
        for q in [0.0, 0.5, 0.9] {
            let inst = workload::homogeneous(1, 1, q, Precedence::Independent);
            assert!((opt(&inst) - 1.0 / (1.0 - q)).abs() < 1e-9, "q = {q}");
        }
    }

    #[test]
    fn one_job_two_machines_gang() {
        // Optimal: both machines on the job; success 1 - q^2.
        let inst = workload::homogeneous(2, 1, 0.5, Precedence::Independent);
        assert!((opt(&inst) - 1.0 / (1.0 - 0.25)).abs() < 1e-9);
    }

    #[test]
    fn deterministic_chain_is_its_length() {
        let cs = ChainSet::new(4, vec![vec![0, 1, 2, 3]]).unwrap();
        let inst = workload::deterministic(2, 4, Precedence::Chains(cs));
        assert!((opt(&inst) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_independent_load_balance() {
        // 4 jobs, 2 machines, q = 0: two steps (2 jobs per step).
        let inst = workload::deterministic(2, 4, Precedence::Independent);
        assert!((opt(&inst) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn two_jobs_one_machine_known_value() {
        // q = 1/2 each, one machine. Serve one job until done, then the
        // other: E = 2 + 2 = 4. (No better policy exists with one machine.)
        let inst = workload::homogeneous(1, 2, 0.5, Precedence::Independent);
        assert!((opt(&inst) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn opt_monotone_in_machine_quality() {
        let worse = workload::homogeneous(2, 3, 0.8, Precedence::Independent);
        let better = workload::homogeneous(2, 3, 0.4, Precedence::Independent);
        assert!(opt(&better) < opt(&worse));
    }

    #[test]
    fn respects_limits() {
        let inst = workload::homogeneous(2, 10, 0.5, Precedence::Independent);
        let tiny = OptLimits {
            max_jobs: 4,
            max_ops: 1000,
        };
        assert_eq!(exact_opt(&inst, tiny), None);
    }

    #[test]
    fn useless_machine_is_ignored() {
        // Machine 1 never helps (q = 1); OPT must equal the single-machine
        // value.
        let inst = SuuInstance::new(2, 1, vec![0.5, 1.0], Precedence::Independent).unwrap();
        assert!((opt(&inst) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn evaluate_gang_matches_closed_form() {
        // Gang on identical machines: jobs sequential, each
        // Geometric(1 - q^m): E = n / (1 - q^m).
        let (m, n, q) = (3usize, 4usize, 0.6f64);
        let inst = workload::homogeneous(m, n, q, Precedence::Independent);
        let v = evaluate_stationary(&inst, OptLimits::default(), |_, eligible| {
            vec![eligible.first().copied(); m]
        })
        .unwrap();
        let expected = n as f64 / (1.0 - q.powi(m as i32));
        assert!((v - expected).abs() < 1e-9, "{v} vs {expected}");
    }

    #[test]
    fn evaluate_optimal_policy_equals_opt() {
        // Feed the DP's own optimal action back in: values must agree.
        // Here the obviously optimal stationary policy for 2 identical
        // jobs on 2 identical machines is one machine per job.
        let inst = workload::homogeneous(2, 2, 0.5, Precedence::Independent);
        let v = evaluate_stationary(&inst, OptLimits::default(), |_, eligible| {
            (0..2)
                .map(|i| eligible.get(i % eligible.len().max(1)).copied())
                .collect()
        })
        .unwrap();
        let opt = exact_opt(&inst, OptLimits::default()).unwrap();
        assert!(v >= opt - 1e-9, "policy value {v} below OPT {opt}");
        assert!((v - opt).abs() < 1e-9, "split policy is optimal here");
    }

    #[test]
    fn evaluate_detects_stalling_policy() {
        let inst = workload::homogeneous(1, 1, 0.5, Precedence::Independent);
        // Policy that always idles: zero progress.
        let v = evaluate_stationary(&inst, OptLimits::default(), |_, _| vec![None]);
        assert_eq!(v, None);
    }

    #[test]
    fn evaluate_dominated_policy_is_worse() {
        // Using only one machine when two exist must not beat OPT.
        let inst = workload::homogeneous(2, 3, 0.5, Precedence::Independent);
        let lazy = evaluate_stationary(&inst, OptLimits::default(), |_, eligible| {
            vec![eligible.first().copied(), None]
        })
        .unwrap();
        let opt = exact_opt(&inst, OptLimits::default()).unwrap();
        assert!(lazy > opt + 0.5, "lazy {lazy} vs opt {opt}");
    }

    #[test]
    fn opt_policy_replays_the_dp_exactly() {
        // Feeding OptPolicy's stationary action table back through the
        // noise-free evaluator must reproduce E[T_OPT] to the bit.
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        use rand::SeedableRng;
        let inst = workload::uniform_unrelated(2, 5, 0.3, 0.9, Precedence::Independent, &mut rng);
        let mut policy = OptPolicy::build(&inst, OptLimits::default()).expect("tiny");
        let opt = exact_opt(&inst, OptLimits::default()).unwrap();
        assert!((policy.expected_makespan() - opt).abs() < 1e-12);

        use suu_sim::Policy as _;
        let m = inst.num_machines();
        let v = evaluate_stationary(&inst, OptLimits::default(), |mask, _| {
            let mut bits = suu_core::BitSet::new(5);
            for j in (0..5u32).filter(|j| mask >> j & 1 == 1) {
                bits.insert(j);
            }
            let view = suu_sim::StateView {
                time: 0,
                epoch: 0,
                remaining: &bits,
                eligible: &bits,
                n: 5,
                m,
            };
            let mut row = suu_sim::Assignment::new(m);
            policy.decide(&view, &mut row);
            row.slots().iter().map(|s| s.map(|j| j.index())).collect()
        })
        .unwrap();
        assert!((v - opt).abs() < 1e-9, "policy value {v} vs OPT {opt}");
    }

    #[test]
    fn opt_policy_respects_precedence_on_chains() {
        let cs = ChainSet::new(4, vec![vec![0, 1], vec![2, 3]]).unwrap();
        let inst = workload::homogeneous(2, 4, 0.5, Precedence::Chains(cs));
        let policy = OptPolicy::build(&inst, OptLimits::default()).expect("tiny");
        // In the initial state only chain heads are eligible; the optimal
        // action must not touch jobs 1 or 3.
        let mask = 0b1111u32;
        let row = policy.actions.get(&mask).expect("initial state solved");
        for slot in row.iter().flatten() {
            assert!([0usize, 2].contains(slot), "assigned non-head job {slot}");
        }
    }

    #[test]
    fn diamond_dag_orders_correctly() {
        // 0 -> {1,2} -> 3, q = 0, 2 machines: step1 job0, step2 jobs 1+2,
        // step3 job3 => 3 steps.
        let dag = suu_dag::Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let inst = workload::deterministic(2, 4, Precedence::Dag(dag));
        assert!((opt(&inst) - 3.0).abs() < 1e-9);
    }
}
