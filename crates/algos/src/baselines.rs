//! Baseline schedules for the experiment tables.
//!
//! * [`GangSequentialPolicy`] — the trivial `O(n)`-approximation the paper
//!   repeatedly uses as a fallback: all machines on one eligible job at a
//!   time.
//! * [`RoundRobinPolicy`] — naive spread of machines over eligible jobs.
//! * [`BestMachinePolicy`] — each eligible job claims its best machine
//!   (greedy matching by log failure); leftover machines reinforce the
//!   jobs with the best marginal rates.
//! * [`LrGreedyPolicy`] — a per-step greedy in the spirit of Lin &
//!   Rajaraman's `O(log n)` independent-jobs algorithm \[11\]: machines are
//!   assigned one by one to the eligible job where they add the most
//!   *clamped* marginal mass (target 1), i.e. greedily maximizing the
//!   step's aggregate success exponent. \[11\]'s exact greedy is not
//!   reproduced in the paper text; this reconstruction matches its
//!   analysis interface (constant-factor mass coverage per step) and is
//!   labeled accordingly in the harness output.

use std::sync::Arc;
use suu_core::{JobId, MachineId, SuuInstance};
use suu_sim::{Assignment, Decision, Policy, StateView};

/// All machines gang on the first eligible job (by id), then the next.
pub struct GangSequentialPolicy {
    name: &'static str,
}

impl GangSequentialPolicy {
    /// New gang-sequential baseline.
    pub fn new() -> Self {
        GangSequentialPolicy {
            name: "gang-sequential",
        }
    }
}

impl Default for GangSequentialPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for GangSequentialPolicy {
    fn name(&self) -> &str {
        self.name
    }
    fn reset(&mut self) {}
    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
        // Pure function of the eligible set: hold until a completion.
        out.fill(view.eligible.first().map(JobId));
        Decision::HOLD
    }

    /// Stateless, time-invariant, always HOLD: the batched engine may
    /// share one decision per remaining set across a whole trial batch.
    fn is_stationary(&self) -> bool {
        true
    }
}

/// Machine `i` serves eligible job `(i + t) mod k` — uniform spread with
/// rotation so every job eventually sees every machine.
pub struct RoundRobinPolicy {
    name: &'static str,
}

impl RoundRobinPolicy {
    /// New round-robin baseline.
    pub fn new() -> Self {
        RoundRobinPolicy {
            name: "round-robin",
        }
    }
}

impl Default for RoundRobinPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl Policy for RoundRobinPolicy {
    fn name(&self) -> &str {
        self.name
    }
    fn reset(&mut self) {}
    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
        let eligible: Vec<u32> = view.eligible.iter().collect();
        if eligible.is_empty() {
            return Decision::HOLD;
        }
        for i in 0..view.m {
            let idx = (i as u64 + view.time) as usize % eligible.len();
            out.set(i, JobId(eligible[idx]));
        }
        if eligible.len() == 1 {
            // Rotation is a no-op with one target: hold.
            Decision::HOLD
        } else {
            // Genuinely time-varying: degrade to per-step pacing.
            Decision::step(view)
        }
    }
}

/// Greedy matching: jobs (in order of scarcest best rate) claim their best
/// machine; leftover machines go to their own best eligible job.
pub struct BestMachinePolicy {
    inst: Arc<SuuInstance>,
    name: &'static str,
}

impl BestMachinePolicy {
    /// New best-machine baseline over the given instance.
    pub fn new(inst: Arc<SuuInstance>) -> Self {
        BestMachinePolicy {
            inst,
            name: "best-machine",
        }
    }
}

impl Policy for BestMachinePolicy {
    fn name(&self) -> &str {
        self.name
    }
    fn reset(&mut self) {}
    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
        let mut eligible: Vec<u32> = view.eligible.iter().collect();
        if eligible.is_empty() {
            return Decision::HOLD;
        }
        // Hardest jobs (smallest best rate) pick first.
        eligible.sort_by(|&a, &b| {
            self.inst
                .best_ell(JobId(a))
                .partial_cmp(&self.inst.best_ell(JobId(b)))
                .expect("ells are finite")
        });
        for &j in &eligible {
            // Best *free* machine for j.
            let mut best: Option<(usize, f64)> = None;
            for i in 0..view.m {
                if out.get(i).is_some() {
                    continue;
                }
                let e = self.inst.ell(MachineId(i as u32), JobId(j));
                if e > 0.0 && best.is_none_or(|(_, be)| e > be) {
                    best = Some((i, e));
                }
            }
            if let Some((i, _)) = best {
                out.set(i, JobId(j));
            }
        }
        // Leftover machines reinforce their individually best eligible job.
        for i in 0..view.m {
            if out.get(i).is_some() {
                continue;
            }
            let mut best: Option<(u32, f64)> = None;
            for &j in &eligible {
                let e = self.inst.ell(MachineId(i as u32), JobId(j));
                if e > 0.0 && best.is_none_or(|(_, be)| e > be) {
                    best = Some((j, e));
                }
            }
            out.set_slot(i, best.map(|(j, _)| JobId(j)));
        }
        // Pure function of the eligible set: hold until a completion.
        Decision::HOLD
    }

    /// The matching depends only on the eligible set and the (fixed)
    /// instance rates, so the batched engine may share decisions.
    fn is_stationary(&self) -> bool {
        true
    }
}

/// Per-step greedy marginal-mass maximization (Lin–Rajaraman-style).
pub struct LrGreedyPolicy {
    inst: Arc<SuuInstance>,
    name: &'static str,
    /// Clamp target for marginal mass (1 = aim for constant success).
    target: f64,
}

impl LrGreedyPolicy {
    /// New greedy baseline with the standard unit mass target.
    pub fn new(inst: Arc<SuuInstance>) -> Self {
        LrGreedyPolicy {
            inst,
            name: "greedy-lr",
            target: 1.0,
        }
    }
}

impl Policy for LrGreedyPolicy {
    fn name(&self) -> &str {
        self.name
    }
    fn reset(&mut self) {}
    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
        let eligible: Vec<u32> = view.eligible.iter().collect();
        if eligible.is_empty() {
            return Decision::HOLD;
        }
        // Accumulated mass planned for each eligible job this step.
        let mut planned = vec![0.0f64; eligible.len()];
        for i in 0..view.m {
            let mut best: Option<(usize, f64)> = None;
            for (p, &j) in eligible.iter().enumerate() {
                let e = self.inst.ell(MachineId(i as u32), JobId(j));
                if e <= 0.0 {
                    continue;
                }
                // Marginal clamped contribution toward `target`.
                let marginal = (self.target - planned[p]).max(0.0).min(e);
                // Prefer strictly-useful contributions; tie-break by raw
                // rate so saturated steps still spread sensibly.
                let score = marginal + 1e-9 * e;
                if best.is_none_or(|(_, bs)| score > bs) {
                    best = Some((p, score));
                }
            }
            if let Some((p, _)) = best {
                planned[p] += self.inst.ell(MachineId(i as u32), JobId(eligible[p]));
                out.set(i, JobId(eligible[p]));
            }
        }
        // Pure function of the eligible set: hold until a completion.
        Decision::HOLD
    }

    /// The greedy row depends only on the eligible set and the (fixed)
    /// instance rates, so the batched engine may share decisions.
    fn is_stationary(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use suu_core::{workload, Precedence};
    use suu_dag::generators;
    use suu_sim::{execute, ExecConfig};

    fn check_completes(mut policy: impl Policy, inst: &SuuInstance, seed: u64) -> u64 {
        let out = execute(inst, &mut policy, &ExecConfig::default(), seed);
        assert!(out.completed, "{} did not complete", policy.name());
        assert_eq!(out.ineligible_assignments, 0, "{}", policy.name());
        out.makespan
    }

    /// One decide call against a synthetic view; returns the row.
    fn decide_once(policy: &mut impl Policy, view: &StateView<'_>) -> Vec<Option<JobId>> {
        let mut out = Assignment::new(view.m);
        policy.decide(view, &mut out);
        out.slots().to_vec()
    }

    #[test]
    fn all_baselines_complete_independent() {
        let mut grng = SmallRng::seed_from_u64(1);
        let inst = Arc::new(workload::uniform_unrelated(
            3,
            8,
            0.3,
            0.9,
            Precedence::Independent,
            &mut grng,
        ));
        check_completes(GangSequentialPolicy::new(), &inst, 10);
        check_completes(RoundRobinPolicy::new(), &inst, 11);
        check_completes(BestMachinePolicy::new(inst.clone()), &inst, 12);
        check_completes(LrGreedyPolicy::new(inst.clone()), &inst, 13);
    }

    #[test]
    fn all_baselines_respect_dag_precedence() {
        let mut grng = SmallRng::seed_from_u64(2);
        let dag = generators::layered_dag(10, 3, 0.4, &mut grng);
        let inst = Arc::new(workload::uniform_unrelated(
            3,
            10,
            0.3,
            0.9,
            Precedence::Dag(dag),
            &mut grng,
        ));
        check_completes(GangSequentialPolicy::new(), &inst, 20);
        check_completes(RoundRobinPolicy::new(), &inst, 21);
        check_completes(BestMachinePolicy::new(inst.clone()), &inst, 22);
        check_completes(LrGreedyPolicy::new(inst.clone()), &inst, 23);
    }

    #[test]
    fn best_machine_avoids_useless_machines() {
        // Machine 1 is useless for job 0 (q=1); it must not be assigned
        // there while job 1 exists.
        let inst = Arc::new(
            SuuInstance::new(2, 2, vec![0.5, 0.5, 1.0, 0.5], Precedence::Independent).unwrap(),
        );
        let mut policy = BestMachinePolicy::new(inst.clone());
        policy.reset();
        let remaining = suu_core::BitSet::full(2);
        let view = StateView {
            time: 0,
            epoch: 0,
            remaining: &remaining,
            eligible: &remaining,
            n: 2,
            m: 2,
        };
        let row = decide_once(&mut policy, &view);
        assert_ne!(row[1], Some(JobId(0)), "machine 1 cannot help job 0");
    }

    #[test]
    fn greedy_spreads_mass_before_piling_on() {
        // Two identical jobs, two identical machines with ell = 1: the
        // greedy should cover both jobs rather than double-teaming one.
        let inst = Arc::new(workload::homogeneous(2, 2, 0.5, Precedence::Independent));
        let mut policy = LrGreedyPolicy::new(inst.clone());
        policy.reset();
        let remaining = suu_core::BitSet::full(2);
        let view = StateView {
            time: 0,
            epoch: 0,
            remaining: &remaining,
            eligible: &remaining,
            n: 2,
            m: 2,
        };
        let row = decide_once(&mut policy, &view);
        let jobs: std::collections::HashSet<_> = row.iter().flatten().collect();
        assert_eq!(jobs.len(), 2, "both jobs should be covered: {row:?}");
    }

    #[test]
    fn gang_on_deterministic_instance_is_n_steps() {
        let inst = workload::deterministic(3, 5, Precedence::Independent);
        let makespan = check_completes(GangSequentialPolicy::new(), &inst, 30);
        assert_eq!(makespan, 5);
    }
}
