//! Error type shared by the algorithm constructors.

use suu_lp::LpError;

/// Errors raised while constructing a schedule.
#[derive(Debug, Clone)]
pub enum AlgoError {
    /// The LP solver failed (iteration limit or malformed model).
    Lp(LpError),
    /// The LP was reported infeasible/unbounded — impossible for valid SUU
    /// instances, so it indicates a modelling bug and is surfaced loudly.
    UnexpectedLpStatus(&'static str),
    /// The rounding flow failed to saturate the source, violating the
    /// Lemma 2/6 feasibility argument.
    RoundingUnsaturated {
        /// Flow demanded by the group capacities.
        demanded: u64,
        /// Flow actually routed.
        routed: u64,
    },
    /// Input shape unsupported by this algorithm (e.g. chains policy given
    /// a job in no chain).
    BadInput(String),
}

impl From<LpError> for AlgoError {
    fn from(e: LpError) -> Self {
        AlgoError::Lp(e)
    }
}

impl std::fmt::Display for AlgoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgoError::Lp(e) => write!(f, "LP solve failed: {e}"),
            AlgoError::UnexpectedLpStatus(s) => write!(f, "unexpected LP status: {s}"),
            AlgoError::RoundingUnsaturated { demanded, routed } => {
                write!(
                    f,
                    "rounding flow unsaturated: routed {routed} of {demanded}"
                )
            }
            AlgoError::BadInput(msg) => write!(f, "bad input: {msg}"),
        }
    }
}

impl std::error::Error for AlgoError {}
