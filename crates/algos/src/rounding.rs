//! LP rounding via grouping and integral max-flow (Lemmas 2 and 6).
//!
//! Given a fractional LP solution `{x*_ij}` granting every job `j ∈ J'`
//! clamped log mass `≥ L` with machine loads `≤ t*`, produce an *integral*
//! assignment `{x̂_ij}` with mass `≥ L` and loads `≤ ⌈6 t*⌉`:
//!
//! 1. **Group** machines per job by `k = ⌊log₂ ℓ′_ij⌋`; let
//!    `D*_jk = Σ_{i: ⌊log₂ ℓ′_ij⌋ = k} x*_ij`.
//! 2. **Scale and floor**: target `⌊6 D*_jk⌋` integral steps per group.
//!    The paper's counting argument shows
//!    `Σ_k ⌊6 D*_jk⌋ 2^k ≥ 3L − 2L = L`, so group-level integrality
//!    preserves the mass guarantee.
//! 3. **Flow**: a three-layer network (source → group nodes `u_jk` with
//!    capacity `⌊6D*_jk⌋` → machine nodes `v_i` → sink with capacity
//!    `⌈6t*⌉`) admits a fractional flow saturating the source (`6x*` routed
//!    directly), hence — Ford–Fulkerson integrality — an integral one. The
//!    integral flow on `(u_jk, v_i)` is `x̂_ij`.
//!
//! Lemma 6 (chains) is the same construction with the `(u_jk, v_i)` edges
//! capped at `⌈6 d*_j⌉`, bounding each job's rounded *length*
//! (`d̂_j = max_i x̂_ij ≤ ⌈6 d*_j⌉`) so chain lengths grow by at most a
//! constant factor.

use crate::AlgoError;
use suu_core::logmass::clamped;
use suu_core::{Assignment, JobId, MachineId, SuuInstance};
use suu_flow::{FlowNetwork, CAP_INF};

/// Diagnostics from a rounding run, used by tests and the `fig_lp_quality`
/// experiment to verify the lemma guarantees empirically.
#[derive(Debug, Clone)]
pub struct RoundingReport {
    /// Minimum clamped mass across rounded jobs (Lemma guarantee: `≥ L`).
    pub min_clamped_mass: f64,
    /// Maximum machine load of the rounded assignment
    /// (guarantee: `≤ ⌈scale · t*⌉`).
    pub max_load: u64,
    /// The load cap `⌈scale · t*⌉` used in the flow network.
    pub load_cap: u64,
    /// Total source-side capacity (flow demand).
    pub demanded: u64,
    /// Flow actually routed (must equal `demanded`).
    pub routed: u64,
    /// The scale factor actually used (≤ 6; the paper's proof uses 6, but
    /// smaller factors are accepted when they verifiably meet the same
    /// mass/saturation guarantees — see [`ScaleMode`]).
    pub scale: u32,
}

/// How aggressively to scale the fractional solution before flooring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleMode {
    /// The paper's proof constant: scale by exactly 6. Mass ≥ `L` and flow
    /// saturation are then guaranteed a priori (Lemma 2's counting
    /// argument).
    PaperExact,
    /// Try scales 1, 2, 3 first and accept the smallest whose *verified*
    /// rounded solution meets the identical guarantees (mass ≥ `L` per
    /// job, source saturated); fall back to 6 otherwise. Same worst-case
    /// guarantee, markedly shorter schedules in practice (see the
    /// `rounding_scale` ablation bench).
    Adaptive,
}

/// Inputs to the rounding: one entry per job of `J'`.
pub struct FractionalJob<'a> {
    /// Original job id.
    pub job: u32,
    /// Positive fractional assignments `(machine, x*_ij)`.
    pub x: &'a [(u32, f64)],
    /// Optional fractional length `d*_j` (Lemma 6); `None` = uncapped
    /// (Lemma 2).
    pub d_star: Option<f64>,
}

/// Round a fractional LP1/LP2-style solution into an integral
/// [`Assignment`] (adaptive scale — see [`ScaleMode`]).
///
/// `target` is the mass target `L`; `t_star` the fractional optimum.
pub fn round_assignment(
    inst: &SuuInstance,
    jobs: &[FractionalJob<'_>],
    target: f64,
    t_star: f64,
) -> Result<(Assignment, RoundingReport), AlgoError> {
    round_assignment_with(inst, jobs, target, t_star, ScaleMode::Adaptive)
}

/// [`round_assignment`] with an explicit [`ScaleMode`].
pub fn round_assignment_with(
    inst: &SuuInstance,
    jobs: &[FractionalJob<'_>],
    target: f64,
    t_star: f64,
    mode: ScaleMode,
) -> Result<(Assignment, RoundingReport), AlgoError> {
    let scales: &[u32] = match mode {
        ScaleMode::PaperExact => &[6],
        ScaleMode::Adaptive => &[1, 2, 3, 6],
    };
    let mut last_err = None;
    for (idx, &scale) in scales.iter().enumerate() {
        let is_last = idx == scales.len() - 1;
        match try_round_at_scale(inst, jobs, target, t_star, scale) {
            Ok((assignment, report)) => {
                let mass_ok = jobs.is_empty() || report.min_clamped_mass >= target - 1e-9;
                if mass_ok {
                    return Ok((assignment, report));
                }
                if is_last {
                    // Scale 6 must meet the mass bound by Lemma 2's
                    // counting argument; reaching here means a numeric
                    // violation worth surfacing.
                    return Err(AlgoError::BadInput(format!(
                        "mass guarantee failed at scale {scale}: {} < {target}",
                        report.min_clamped_mass
                    )));
                }
            }
            Err(e) => {
                if is_last {
                    return Err(e);
                }
                last_err = Some(e);
            }
        }
    }
    Err(last_err.unwrap_or(AlgoError::BadInput("no scale candidates".into())))
}

fn try_round_at_scale(
    inst: &SuuInstance,
    jobs: &[FractionalJob<'_>],
    target: f64,
    t_star: f64,
    scale: u32,
) -> Result<(Assignment, RoundingReport), AlgoError> {
    let m = inst.num_machines();
    let n = inst.num_jobs();
    let s = scale as f64;
    let load_cap = (s * t_star).ceil().max(0.0) as u64;

    // Node layout: 0 = source; 1..=G group nodes; then m machine nodes;
    // last = sink. Groups are discovered per job.
    struct Group {
        job_pos: usize,
        cap: u64,
        members: Vec<u32>, // machines
    }
    let mut groups: Vec<Group> = Vec::new();
    for (p, fj) in jobs.iter().enumerate() {
        // Bucket this job's machines by k = floor(log2 ell').
        // Small map: jobs touch few distinct k in practice.
        let mut buckets: Vec<(i32, f64, Vec<u32>)> = Vec::new();
        for &(i, x) in fj.x {
            let ell = inst.ell(MachineId(i), JobId(fj.job));
            debug_assert!(ell > 0.0, "zero-ell machine in fractional solution");
            let ellp = clamped(ell, target);
            let k = ellp.log2().floor() as i32;
            match buckets.iter_mut().find(|b| b.0 == k) {
                Some(b) => {
                    b.1 += x;
                    b.2.push(i);
                }
                None => buckets.push((k, x, vec![i])),
            }
        }
        // At small scales flooring can zero out every group; promote the
        // strongest group to capacity 1 so the job is never dropped (the
        // mass check afterwards decides whether this scale is accepted).
        let mut any_positive = false;
        let mut caps: Vec<u64> = Vec::with_capacity(buckets.len());
        for &(_, d_jk, _) in &buckets {
            let cap = (s * d_jk).floor() as u64;
            any_positive |= cap > 0;
            caps.push(cap);
        }
        if !any_positive && !buckets.is_empty() {
            let best = buckets
                .iter()
                .enumerate()
                .max_by_key(|(_, b)| b.0)
                .map(|(bi, _)| bi)
                .expect("nonempty buckets");
            caps[best] = 1;
        }
        for ((_, _, members), cap) in buckets.into_iter().zip(caps) {
            if cap == 0 {
                continue;
            }
            groups.push(Group {
                job_pos: p,
                cap,
                members,
            });
        }
    }

    let source = 0usize;
    let first_group = 1usize;
    let first_machine = first_group + groups.len();
    let sink = first_machine + m;
    let mut net = FlowNetwork::new(sink + 1);

    let mut demanded = 0u64;
    let mut group_machine_edges: Vec<Vec<(u32, suu_flow::EdgeId)>> =
        Vec::with_capacity(groups.len());
    for (g, group) in groups.iter().enumerate() {
        demanded += group.cap;
        net.add_edge(source, first_group + g, group.cap);
        let d_cap = match jobs[group.job_pos].d_star {
            Some(d) => (s * d).ceil().max(1.0) as u64,
            None => CAP_INF,
        };
        let mut edges = Vec::with_capacity(group.members.len());
        for &i in &group.members {
            edges.push((
                i,
                net.add_edge(first_group + g, first_machine + i as usize, d_cap),
            ));
        }
        group_machine_edges.push(edges);
    }
    for i in 0..m {
        net.add_edge(first_machine + i, sink, load_cap.max(1));
    }

    let routed = net.max_flow(source, sink);
    if routed != demanded {
        return Err(AlgoError::RoundingUnsaturated { demanded, routed });
    }

    let mut assignment = Assignment::new(m, n);
    for (g, edges) in group_machine_edges.iter().enumerate() {
        let job = jobs[groups[g].job_pos].job;
        for &(i, e) in edges {
            let f = net.flow_on(e);
            if f > 0 {
                assignment.add(MachineId(i), JobId(job), f);
            }
        }
    }

    // Report: clamped masses and loads.
    let mut min_mass = f64::INFINITY;
    for fj in jobs {
        let mass: f64 = assignment
            .machines_for(JobId(fj.job))
            .iter()
            .map(|&(i, st)| clamped(inst.ell(MachineId(i), JobId(fj.job)), target) * st as f64)
            .sum();
        min_mass = min_mass.min(mass);
    }
    let report = RoundingReport {
        min_clamped_mass: min_mass,
        max_load: assignment.max_load(),
        load_cap: load_cap.max(1),
        demanded,
        routed,
        scale,
    };
    Ok((assignment, report))
}

/// Lemma 2: round an [`crate::lp1::Lp1Solution`] (adaptive scale).
pub fn round_lp1(
    inst: &SuuInstance,
    sol: &crate::lp1::Lp1Solution,
) -> Result<(Assignment, RoundingReport), AlgoError> {
    round_lp1_with(inst, sol, ScaleMode::Adaptive)
}

/// Lemma 2 rounding with an explicit [`ScaleMode`] (the `PaperExact` mode
/// backs the `rounding_scale` ablation experiment).
pub fn round_lp1_with(
    inst: &SuuInstance,
    sol: &crate::lp1::Lp1Solution,
    mode: ScaleMode,
) -> Result<(Assignment, RoundingReport), AlgoError> {
    let jobs: Vec<FractionalJob<'_>> = sol
        .jobs
        .iter()
        .enumerate()
        .map(|(p, &j)| FractionalJob {
            job: j,
            x: sol.x_for(p),
            d_star: None,
        })
        .collect();
    round_assignment_with(inst, &jobs, sol.target, sol.t_star, mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp1::solve_lp1;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use suu_core::{workload, Precedence};

    fn check_guarantees(inst: &SuuInstance, jobs: &[u32], target: f64) {
        let sol = solve_lp1(inst, jobs, target).unwrap();
        let (asg, report) = round_lp1(inst, &sol).unwrap();
        assert!(
            report.min_clamped_mass >= target - 1e-9,
            "mass guarantee violated: {} < {} (n={}, m={})",
            report.min_clamped_mass,
            target,
            inst.num_jobs(),
            inst.num_machines()
        );
        assert!(
            report.max_load <= report.load_cap,
            "load guarantee violated: {} > {}",
            report.max_load,
            report.load_cap
        );
        assert_eq!(report.routed, report.demanded);
        // Unclamped mass is at least the clamped mass.
        for &j in jobs {
            assert!(asg.mass(JobId(j), inst) >= target - 1e-9);
        }
    }

    #[test]
    fn homogeneous_small() {
        let inst = workload::homogeneous(2, 3, 0.5, Precedence::Independent);
        check_guarantees(&inst, &[0, 1, 2], 0.5);
    }

    #[test]
    fn target_larger_than_ell() {
        let inst = workload::homogeneous(2, 2, 0.9, Precedence::Independent); // ell ≈ 0.152
        check_guarantees(&inst, &[0, 1], 2.0);
    }

    #[test]
    fn heterogeneous_with_strong_machines() {
        // One super-reliable machine (q = 0.01 -> ell ≈ 6.6) and weak ones.
        let mut q = vec![0.9; 3 * 4];
        q[..4].fill(0.01);
        let inst = SuuInstance::new(3, 4, q, Precedence::Independent).unwrap();
        check_guarantees(&inst, &[0, 1, 2, 3], 0.5);
        check_guarantees(&inst, &[0, 1, 2, 3], 4.0);
    }

    #[test]
    fn random_instances_meet_lemma2_guarantees() {
        for seed in 0..30u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = 3 + (seed % 8) as usize;
            let m = 2 + (seed % 5) as usize;
            let inst =
                workload::uniform_unrelated(m, n, 0.05, 0.99, Precedence::Independent, &mut rng);
            let jobs: Vec<u32> = (0..n as u32).collect();
            for target in [0.5, 1.0, 3.0] {
                check_guarantees(&inst, &jobs, target);
            }
        }
    }

    #[test]
    fn rounded_value_within_constant_of_fractional() {
        // The rounded schedule length (= max load) is at most ⌈6 t*⌉; also
        // sanity-check it is at least t* (rounding cannot beat the LP by
        // more than integrality slack).
        let mut rng = SmallRng::seed_from_u64(42);
        let inst = workload::uniform_unrelated(4, 10, 0.2, 0.95, Precedence::Independent, &mut rng);
        let jobs: Vec<u32> = (0..10).collect();
        let sol = solve_lp1(&inst, &jobs, 0.5).unwrap();
        let (_asg, report) = round_lp1(&inst, &sol).unwrap();
        assert!(report.max_load as f64 <= 6.0 * sol.t_star + 1.0);
    }

    #[test]
    fn subset_rounding_leaves_other_jobs_empty() {
        let inst = workload::homogeneous(2, 5, 0.5, Precedence::Independent);
        let sol = solve_lp1(&inst, &[1, 3], 0.5).unwrap();
        let (asg, _) = round_lp1(&inst, &sol).unwrap();
        for j in [0u32, 2, 4] {
            assert!(asg.machines_for(JobId(j)).is_empty());
        }
        for j in [1u32, 3] {
            assert!(!asg.machines_for(JobId(j)).is_empty());
        }
    }

    #[test]
    fn empty_solution_rounds_to_empty() {
        let inst = workload::homogeneous(1, 1, 0.5, Precedence::Independent);
        let sol = solve_lp1(&inst, &[], 0.5).unwrap();
        let (asg, report) = round_lp1(&inst, &sol).unwrap();
        assert_eq!(asg.max_load(), 0);
        assert_eq!(report.demanded, 0);
    }
}
