//! Lower bounds on `E[T_OPT]` for approximation-ratio reporting.
//!
//! At experiment scale the exact optimum is out of reach (NP-hard), so
//! ratios are reported against provable lower bounds:
//!
//! * **Lemma-1 bound**: `E[T_OPT] ≥ t_LP1(J, 1/2) / 2`. The paper's proof:
//!   with probability 1/2 each, a job's hidden draw demands mass ≥ 1/2, and
//!   averaging over the uniformly random subset `U` shows OPT embeds a
//!   feasible `LP1(U, 1/2)` solution.
//! * **Lemma-5-style chain bound**: the same subset argument applied to
//!   (LP2) with mass target 1/2 (loads, chain spans and unit lengths are
//!   all schedule-valid), giving `E[T_OPT] ≥ t_LP2(1/2) / 2`.
//! * **Dilation**: every job takes ≥ 1 step, so the longest precedence
//!   path lower-bounds any schedule.
//! * **Gang rate**: job `j` cannot finish faster than a geometric with
//!   success `1 − 2^(−Σ_i ℓ_ij)` (all machines helping every step), so
//!   `E[T_OPT] ≥ max_j 1/(1 − ∏_i q_ij)`.

use crate::lp1::solve_lp1;
use crate::lp2::solve_lp2;
use crate::AlgoError;
use suu_core::{JobId, Precedence, SuuInstance};

/// The Lemma-1 LP bound: `t_LP1(J, 1/2) / 2`.
pub fn lp1_half_bound(inst: &SuuInstance) -> Result<f64, AlgoError> {
    let jobs: Vec<u32> = (0..inst.num_jobs() as u32).collect();
    Ok(solve_lp1(inst, &jobs, 0.5)?.t_star / 2.0)
}

/// The chain LP bound: `t_LP2(chains, 1/2) / 2`.
pub fn lp2_half_bound(inst: &SuuInstance, chains: &[Vec<u32>]) -> Result<f64, AlgoError> {
    Ok(solve_lp2(inst, chains, 0.5)?.t_star / 2.0)
}

/// Longest precedence path (number of jobs), a dilation bound.
pub fn dilation_bound(inst: &SuuInstance) -> f64 {
    inst.precedence().to_dag(inst.num_jobs()).longest_path_len() as f64
}

/// `max_j 1/(1 − ∏_i q_ij)`: even ganging every machine on `j` each step,
/// its completion is geometric at that rate.
pub fn gang_rate_bound(inst: &SuuInstance) -> f64 {
    (0..inst.num_jobs() as u32)
        .map(|j| {
            let mass = inst.gang_mass(JobId(j));
            let fail = (-mass).exp2();
            1.0 / (1.0 - fail)
        })
        .fold(1.0f64, f64::max)
}

/// Best available lower bound for an instance (uses the chain LP when the
/// precedence is chains; always includes the independent-jobs LP bound,
/// the dilation bound, and the gang-rate bound).
pub fn lower_bound(inst: &SuuInstance) -> Result<f64, AlgoError> {
    let mut lb = lp1_half_bound(inst)?;
    lb = lb.max(dilation_bound(inst));
    lb = lb.max(gang_rate_bound(inst));
    if let Precedence::Chains(cs) = inst.precedence() {
        lb = lb.max(lp2_half_bound(inst, cs.chains())?);
    }
    Ok(lb.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::{exact_opt, OptLimits};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use suu_core::{workload, Precedence};
    use suu_dag::{generators, ChainSet};

    #[test]
    fn bounds_are_at_most_exact_opt_independent() {
        for seed in 0..12u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = 2 + (seed % 4) as usize;
            let m = 1 + (seed % 3) as usize;
            let inst =
                workload::uniform_unrelated(m, n, 0.2, 0.95, Precedence::Independent, &mut rng);
            let lb = lower_bound(&inst).unwrap();
            let opt = exact_opt(&inst, OptLimits::default()).unwrap();
            assert!(
                lb <= opt + 1e-6,
                "seed {seed}: LB {lb} exceeds OPT {opt} (n={n}, m={m})"
            );
        }
    }

    #[test]
    fn bounds_are_at_most_exact_opt_chains() {
        for seed in 0..10u64 {
            let mut rng = SmallRng::seed_from_u64(1000 + seed);
            let n = 3 + (seed % 3) as usize;
            let cs = generators::random_chain_set(n, 1 + (seed as usize % 2), &mut rng);
            let inst =
                workload::uniform_unrelated(2, n, 0.3, 0.9, Precedence::Chains(cs), &mut rng);
            let lb = lower_bound(&inst).unwrap();
            let opt = exact_opt(&inst, OptLimits::default()).unwrap();
            assert!(lb <= opt + 1e-6, "seed {seed}: LB {lb} exceeds OPT {opt}");
        }
    }

    #[test]
    fn dilation_bound_for_chain() {
        let cs = ChainSet::new(5, vec![vec![0, 1, 2, 3, 4]]).unwrap();
        let inst = workload::homogeneous(3, 5, 0.5, Precedence::Chains(cs));
        assert_eq!(dilation_bound(&inst), 5.0);
    }

    #[test]
    fn gang_rate_bound_single_job() {
        // 2 machines with q = 0.5: fail = 0.25, bound = 4/3.
        let inst = workload::homogeneous(2, 1, 0.5, Precedence::Independent);
        assert!((gang_rate_bound(&inst) - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn lower_bound_at_least_one() {
        let inst = workload::deterministic(4, 2, Precedence::Independent);
        assert!(lower_bound(&inst).unwrap() >= 1.0);
    }

    #[test]
    fn lp_bound_grows_with_load() {
        // One machine, growing job count: LP bound must grow linearly-ish.
        let small = workload::homogeneous(1, 2, 0.5, Precedence::Independent);
        let large = workload::homogeneous(1, 8, 0.5, Precedence::Independent);
        assert!(lp1_half_bound(&large).unwrap() > 2.0 * lp1_half_bound(&small).unwrap());
    }

    /// The full sandwich on tiny chain instances:
    /// `dilation ≤ lower_bound ≤ E[T_OPT]`. The left inequality is the
    /// composition contract (the dilation bound participates in the max);
    /// the right is the point of a lower bound — checked against the
    /// exact MDP optimum, which no component may exceed individually
    /// either.
    #[test]
    fn dilation_le_lower_bound_le_exact_opt() {
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(500 + seed);
            let n = 3 + (seed % 3) as usize;
            let cs = generators::random_chain_set(n, 1 + (seed as usize % 3).min(n - 1), &mut rng);
            let inst =
                workload::uniform_unrelated(2, n, 0.25, 0.9, Precedence::Chains(cs), &mut rng);
            let dilation = dilation_bound(&inst);
            let lb = lower_bound(&inst).unwrap();
            let opt = exact_opt(&inst, OptLimits::default()).unwrap();
            assert!(
                dilation <= lb + 1e-9,
                "seed {seed}: dilation {dilation} > LB {lb}"
            );
            assert!(lb <= opt + 1e-6, "seed {seed}: LB {lb} > OPT {opt}");
            // Every component respects OPT on its own.
            assert!(lp1_half_bound(&inst).unwrap() <= opt + 1e-6, "seed {seed}");
            assert!(gang_rate_bound(&inst) <= opt + 1e-6, "seed {seed}");
            if let Precedence::Chains(cs) = inst.precedence() {
                assert!(
                    lp2_half_bound(&inst, cs.chains()).unwrap() <= opt + 1e-6,
                    "seed {seed}"
                );
            }
        }
    }

    /// On singleton chains (every chain one job) the chain LP collapses
    /// to the independent-jobs LP — same variables, the span constraints
    /// degenerate to the per-job length constraints — so the two bounds
    /// must agree; on real chains the extra span constraints can only
    /// push the chain bound *up*.
    #[test]
    fn lp1_and_lp2_agree_on_chain_instances() {
        for seed in 0..6u64 {
            let mut rng = SmallRng::seed_from_u64(2_000 + seed);
            let n = 3 + (seed % 3) as usize;
            // Singleton chains: exact agreement.
            let singles: Vec<Vec<u32>> = (0..n as u32).map(|j| vec![j]).collect();
            let cs = ChainSet::new(n, singles.clone()).unwrap();
            let inst =
                workload::uniform_unrelated(2, n, 0.3, 0.9, Precedence::Chains(cs), &mut rng);
            let lp1 = lp1_half_bound(&inst).unwrap();
            let lp2 = lp2_half_bound(&inst, &singles).unwrap();
            assert!(
                (lp1 - lp2).abs() <= 1e-6 * lp1.max(1.0),
                "seed {seed}: singleton-chain LP2 {lp2} != LP1 {lp1}"
            );
            // One long chain: LP2 sees the span, LP1 does not.
            let chain: Vec<Vec<u32>> = vec![(0..n as u32).collect()];
            let cs = ChainSet::new(n, chain.clone()).unwrap();
            let inst =
                workload::uniform_unrelated(2, n, 0.3, 0.9, Precedence::Chains(cs), &mut rng);
            let lp1 = lp1_half_bound(&inst).unwrap();
            let lp2 = lp2_half_bound(&inst, &chain).unwrap();
            assert!(
                lp2 >= lp1 - 1e-6 * lp1.max(1.0),
                "seed {seed}: chain LP2 {lp2} below LP1 {lp1}"
            );
        }
    }

    /// Adding a job can never *loosen* the bound: every component is
    /// monotone (LP1 gains demand on the same machines, dilation and the
    /// gang rate are maxima over a superset).
    #[test]
    fn lower_bound_monotone_under_adding_a_job() {
        for seed in 0..8u64 {
            let mut rng = SmallRng::seed_from_u64(3_000 + seed);
            let (m, n) = (2 + (seed % 2) as usize, 3 + (seed % 3) as usize);
            let small =
                workload::uniform_unrelated(m, n, 0.2, 0.9, Precedence::Independent, &mut rng);
            // Same q matrix plus one appended column (row-major by
            // machine: insert the new job's q at the end of each row).
            let mut q = Vec::with_capacity(m * (n + 1));
            for i in 0..m as u32 {
                for j in 0..n as u32 {
                    q.push(small.q(suu_core::MachineId(i), JobId(j)));
                }
                q.push(0.5);
            }
            let big = SuuInstance::new(m, n + 1, q, Precedence::Independent).unwrap();
            let lb_small = lower_bound(&small).unwrap();
            let lb_big = lower_bound(&big).unwrap();
            assert!(
                lb_big >= lb_small - 1e-9,
                "seed {seed}: LB dropped from {lb_small} to {lb_big} after adding a job"
            );
            assert!(
                lp1_half_bound(&big).unwrap() >= lp1_half_bound(&small).unwrap() - 1e-9,
                "seed {seed}: LP1 component not monotone"
            );
        }
    }
}
