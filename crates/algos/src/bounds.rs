//! Lower bounds on `E[T_OPT]` for approximation-ratio reporting.
//!
//! At experiment scale the exact optimum is out of reach (NP-hard), so
//! ratios are reported against provable lower bounds:
//!
//! * **Lemma-1 bound**: `E[T_OPT] ≥ t_LP1(J, 1/2) / 2`. The paper's proof:
//!   with probability 1/2 each, a job's hidden draw demands mass ≥ 1/2, and
//!   averaging over the uniformly random subset `U` shows OPT embeds a
//!   feasible `LP1(U, 1/2)` solution.
//! * **Lemma-5-style chain bound**: the same subset argument applied to
//!   (LP2) with mass target 1/2 (loads, chain spans and unit lengths are
//!   all schedule-valid), giving `E[T_OPT] ≥ t_LP2(1/2) / 2`.
//! * **Dilation**: every job takes ≥ 1 step, so the longest precedence
//!   path lower-bounds any schedule.
//! * **Gang rate**: job `j` cannot finish faster than a geometric with
//!   success `1 − 2^(−Σ_i ℓ_ij)` (all machines helping every step), so
//!   `E[T_OPT] ≥ max_j 1/(1 − ∏_i q_ij)`.

use crate::lp1::solve_lp1;
use crate::lp2::solve_lp2;
use crate::AlgoError;
use suu_core::{JobId, Precedence, SuuInstance};

/// The Lemma-1 LP bound: `t_LP1(J, 1/2) / 2`.
pub fn lp1_half_bound(inst: &SuuInstance) -> Result<f64, AlgoError> {
    let jobs: Vec<u32> = (0..inst.num_jobs() as u32).collect();
    Ok(solve_lp1(inst, &jobs, 0.5)?.t_star / 2.0)
}

/// The chain LP bound: `t_LP2(chains, 1/2) / 2`.
pub fn lp2_half_bound(inst: &SuuInstance, chains: &[Vec<u32>]) -> Result<f64, AlgoError> {
    Ok(solve_lp2(inst, chains, 0.5)?.t_star / 2.0)
}

/// Longest precedence path (number of jobs), a dilation bound.
pub fn dilation_bound(inst: &SuuInstance) -> f64 {
    inst.precedence().to_dag(inst.num_jobs()).longest_path_len() as f64
}

/// `max_j 1/(1 − ∏_i q_ij)`: even ganging every machine on `j` each step,
/// its completion is geometric at that rate.
pub fn gang_rate_bound(inst: &SuuInstance) -> f64 {
    (0..inst.num_jobs() as u32)
        .map(|j| {
            let mass = inst.gang_mass(JobId(j));
            let fail = (-mass).exp2();
            1.0 / (1.0 - fail)
        })
        .fold(1.0f64, f64::max)
}

/// Best available lower bound for an instance (uses the chain LP when the
/// precedence is chains; always includes the independent-jobs LP bound,
/// the dilation bound, and the gang-rate bound).
pub fn lower_bound(inst: &SuuInstance) -> Result<f64, AlgoError> {
    let mut lb = lp1_half_bound(inst)?;
    lb = lb.max(dilation_bound(inst));
    lb = lb.max(gang_rate_bound(inst));
    if let Precedence::Chains(cs) = inst.precedence() {
        lb = lb.max(lp2_half_bound(inst, cs.chains())?);
    }
    Ok(lb.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::{exact_opt, OptLimits};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use suu_core::{workload, Precedence};
    use suu_dag::{generators, ChainSet};

    #[test]
    fn bounds_are_at_most_exact_opt_independent() {
        for seed in 0..12u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = 2 + (seed % 4) as usize;
            let m = 1 + (seed % 3) as usize;
            let inst =
                workload::uniform_unrelated(m, n, 0.2, 0.95, Precedence::Independent, &mut rng);
            let lb = lower_bound(&inst).unwrap();
            let opt = exact_opt(&inst, OptLimits::default()).unwrap();
            assert!(
                lb <= opt + 1e-6,
                "seed {seed}: LB {lb} exceeds OPT {opt} (n={n}, m={m})"
            );
        }
    }

    #[test]
    fn bounds_are_at_most_exact_opt_chains() {
        for seed in 0..10u64 {
            let mut rng = SmallRng::seed_from_u64(1000 + seed);
            let n = 3 + (seed % 3) as usize;
            let cs = generators::random_chain_set(n, 1 + (seed as usize % 2), &mut rng);
            let inst =
                workload::uniform_unrelated(2, n, 0.3, 0.9, Precedence::Chains(cs), &mut rng);
            let lb = lower_bound(&inst).unwrap();
            let opt = exact_opt(&inst, OptLimits::default()).unwrap();
            assert!(lb <= opt + 1e-6, "seed {seed}: LB {lb} exceeds OPT {opt}");
        }
    }

    #[test]
    fn dilation_bound_for_chain() {
        let cs = ChainSet::new(5, vec![vec![0, 1, 2, 3, 4]]).unwrap();
        let inst = workload::homogeneous(3, 5, 0.5, Precedence::Chains(cs));
        assert_eq!(dilation_bound(&inst), 5.0);
    }

    #[test]
    fn gang_rate_bound_single_job() {
        // 2 machines with q = 0.5: fail = 0.25, bound = 4/3.
        let inst = workload::homogeneous(2, 1, 0.5, Precedence::Independent);
        assert!((gang_rate_bound(&inst) - 4.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn lower_bound_at_least_one() {
        let inst = workload::deterministic(4, 2, Precedence::Independent);
        assert!(lower_bound(&inst).unwrap() >= 1.0);
    }

    #[test]
    fn lp_bound_grows_with_load() {
        // One machine, growing job count: LP bound must grow linearly-ish.
        let small = workload::homogeneous(1, 2, 0.5, Precedence::Independent);
        let large = workload::homogeneous(1, 8, 0.5, Precedence::Independent);
        assert!(lp1_half_bound(&large).unwrap() > 2.0 * lp1_half_bound(&small).unwrap());
    }
}
