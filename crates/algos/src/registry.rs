//! Registration of every schedule this crate knows into the unified
//! [`suu_sim::PolicyRegistry`].
//!
//! | registry name | family | capability | stationary | parameters |
//! |---|---|---|---|---|
//! | `gang-sequential` | naive `O(n)` fallback | dag | yes | — |
//! | `round-robin` | naive spread | dag | no | — |
//! | `best-machine` | greedy matching | dag | yes | — |
//! | `greedy-lr` | Lin–Rajaraman-style greedy \[11\] | dag | yes | `target` (f64, 1.0) |
//! | `suu-i-obl` | Theorem 3 oblivious `O(log n)` | independent | no | — |
//! | `suu-i-sem` | Theorem 4 semioblivious `O(log log)` | independent | no | — |
//! | `suu-c` | Theorems 7/9 chain schedule | chains | no | `delay`, `coarsen` (bool), `seed`, `fallback` (u64) |
//! | `suu-t` | Theorem 12 forest schedule | forest | no | same as `suu-c` |
//! | `exact-opt` | MDP optimum (tiny instances) | dag | yes | `max_jobs`, `max_ops` (u64) |
//!
//! *Stationary* ([`Policy::is_stationary`]) marks schedules whose row is
//! a pure function of the remaining set; the batched trial engine shares
//! one decision per remaining set across a whole batch for them.
//!
//! Structure is derived from the instance: `suu-c` on an independent
//! instance schedules singleton chains, `suu-t` accepts chains or
//! independent sets as degenerate forests. The registry itself rejects
//! anything *above* a family's declared capability.

use crate::baselines::{BestMachinePolicy, GangSequentialPolicy, LrGreedyPolicy, RoundRobinPolicy};
use crate::opt::{OptLimits, OptPolicy};
use crate::suu_c::{ChainConfig, ChainPolicy};
use crate::suu_i_obl::OblPolicy;
use crate::suu_i_sem::SemPolicy;
use crate::suu_t::ForestPolicy;
use crate::AlgoError;
use suu_core::{Precedence, SuuInstance};
use suu_dag::{ChainSet, Forest};
use suu_sim::{factory, Policy, PolicyRegistry, PolicySpec, RegistryError, StructureClass};

fn build_failed(spec: &PolicySpec, err: AlgoError) -> RegistryError {
    RegistryError::BuildFailed {
        policy: spec.name.clone(),
        reason: err.to_string(),
    }
}

fn reject_unknown(spec: &PolicySpec, known: &[&str]) -> Result<(), RegistryError> {
    let unknown = spec.unknown_params(known);
    if unknown.is_empty() {
        Ok(())
    } else {
        Err(RegistryError::UnknownParams {
            policy: spec.name.clone(),
            keys: unknown,
        })
    }
}

/// Shared `suu-c` / `suu-t` parameter block.
fn chain_config(spec: &PolicySpec) -> Result<ChainConfig, RegistryError> {
    let default = ChainConfig::default();
    Ok(ChainConfig {
        use_random_delay: spec.bool_param("delay", default.use_random_delay)?,
        coarsen: spec.bool_param("coarsen", default.coarsen)?,
        seed: spec.u64_param("seed", default.seed)?,
        fallback_factor: spec.u64_param("fallback", default.fallback_factor)?,
    })
}

/// The instance's chain decomposition: real chains, or singletons for an
/// independent set.
fn chains_of(inst: &SuuInstance) -> Vec<Vec<u32>> {
    match inst.precedence() {
        Precedence::Chains(cs) => cs.chains().to_vec(),
        _ => ChainSet::singletons(inst.num_jobs()).chains().to_vec(),
    }
}

/// The instance's forest view: real forests pass through; chains and
/// independent sets are degenerate (path / edgeless) out-forests.
fn forest_of(inst: &SuuInstance) -> Result<Forest, AlgoError> {
    match inst.precedence() {
        Precedence::Forest(f) => Ok(f.clone()),
        Precedence::Chains(cs) => {
            let mut parent = vec![None; cs.num_jobs()];
            for chain in cs.chains() {
                for pair in chain.windows(2) {
                    parent[pair[1] as usize] = Some(pair[0]);
                }
            }
            Forest::out_forest(parent).map_err(|e| AlgoError::BadInput(e.to_string()))
        }
        Precedence::Independent => Forest::out_forest(vec![None; inst.num_jobs()])
            .map_err(|e| AlgoError::BadInput(e.to_string())),
        Precedence::Dag(_) => Err(AlgoError::BadInput(
            "general DAGs have no forest decomposition".to_string(),
        )),
    }
}

/// Register every family of this crate into `registry`.
pub fn register_standard(registry: &mut PolicyRegistry) {
    registry.register(factory(
        "gang-sequential",
        "all machines gang on one eligible job at a time (naive O(n) fallback)",
        StructureClass::Dag,
        |_inst, spec| {
            reject_unknown(spec, &[])?;
            Ok(Box::new(GangSequentialPolicy::new()) as Box<dyn Policy>)
        },
    ));

    registry.register(factory(
        "round-robin",
        "rotating uniform spread of machines over eligible jobs",
        StructureClass::Dag,
        |_inst, spec| {
            reject_unknown(spec, &[])?;
            Ok(Box::new(RoundRobinPolicy::new()) as Box<dyn Policy>)
        },
    ));

    registry.register(factory(
        "best-machine",
        "greedy matching: scarcest jobs claim their best machines",
        StructureClass::Dag,
        |inst, spec| {
            reject_unknown(spec, &[])?;
            Ok(Box::new(BestMachinePolicy::new(inst.clone())) as Box<dyn Policy>)
        },
    ));

    registry.register(factory(
        "greedy-lr",
        "per-step clamped marginal-mass greedy (Lin–Rajaraman-style [11])",
        StructureClass::Dag,
        |inst, spec| {
            reject_unknown(spec, &[])?;
            Ok(Box::new(LrGreedyPolicy::new(inst.clone())) as Box<dyn Policy>)
        },
    ));

    registry.register(factory(
        "suu-i-obl",
        "SUU-I-OBL: oblivious O(log n) repeated timetable (Theorem 3)",
        StructureClass::Independent,
        |inst, spec| {
            reject_unknown(spec, &[])?;
            let policy = OblPolicy::build(inst).map_err(|e| build_failed(spec, e))?;
            Ok(Box::new(policy) as Box<dyn Policy>)
        },
    ));

    registry.register(factory(
        "suu-i-sem",
        "SUU-I-SEM: semioblivious O(log log min(m,n)) rounds (Theorem 4)",
        StructureClass::Independent,
        |inst, spec| {
            reject_unknown(spec, &[])?;
            let policy = SemPolicy::build(inst.clone()).map_err(|e| build_failed(spec, e))?;
            Ok(Box::new(policy) as Box<dyn Policy>)
        },
    ));

    registry.register(factory(
        "suu-c",
        "SUU-C: chain schedule with random delays and flattening (Theorems 7 & 9)",
        StructureClass::Chains,
        |inst, spec| {
            reject_unknown(spec, &["delay", "coarsen", "seed", "fallback"])?;
            let cfg = chain_config(spec)?;
            let policy = ChainPolicy::build(inst.clone(), chains_of(inst), cfg)
                .map_err(|e| build_failed(spec, e))?;
            Ok(Box::new(policy) as Box<dyn Policy>)
        },
    ));

    registry.register(factory(
        "suu-t",
        "SUU-T: forest schedule via rank decomposition (Theorem 12)",
        StructureClass::Forest,
        |inst, spec| {
            reject_unknown(spec, &["delay", "coarsen", "seed", "fallback"])?;
            let cfg = chain_config(spec)?;
            let forest = forest_of(inst).map_err(|e| build_failed(spec, e))?;
            let policy = ForestPolicy::build(inst.clone(), &forest, cfg)
                .map_err(|e| build_failed(spec, e))?;
            Ok(Box::new(policy) as Box<dyn Policy>)
        },
    ));

    registry.register(factory(
        "exact-opt",
        "the optimal adaptive schedule from the MDP DP (tiny instances only)",
        StructureClass::Dag,
        |inst, spec| {
            reject_unknown(spec, &["max_jobs", "max_ops"])?;
            let defaults = OptLimits::default();
            let limits = OptLimits {
                max_jobs: spec.u64_param("max_jobs", defaults.max_jobs as u64)? as usize,
                max_ops: spec.u64_param("max_ops", defaults.max_ops)?,
            };
            let policy =
                OptPolicy::build(inst, limits).ok_or_else(|| RegistryError::BuildFailed {
                    policy: spec.name.clone(),
                    reason: format!(
                        "instance exceeds exact-OPT limits (n = {}, max_jobs = {})",
                        inst.num_jobs(),
                        limits.max_jobs
                    ),
                })?;
            Ok(Box::new(policy) as Box<dyn Policy>)
        },
    ));
}

/// A fresh registry containing every schedule family in this crate.
pub fn standard_registry() -> PolicyRegistry {
    let mut registry = PolicyRegistry::new();
    register_standard(&mut registry);
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use suu_core::workload;
    use suu_dag::generators;
    use suu_sim::Evaluator;

    fn independent(n: usize) -> Arc<SuuInstance> {
        let mut rng = SmallRng::seed_from_u64(n as u64);
        Arc::new(workload::uniform_unrelated(
            3,
            n,
            0.2,
            0.9,
            Precedence::Independent,
            &mut rng,
        ))
    }

    #[test]
    fn stationary_annotations_match_the_table() {
        // The batched engine trusts these flags for decision sharing, so
        // pin them: only the remaining-set-pure families may claim
        // stationarity.
        let reg = standard_registry();
        let inst = independent(5);
        for (name, stationary) in [
            ("gang-sequential", true),
            ("round-robin", false),
            ("best-machine", true),
            ("greedy-lr", true),
            ("suu-i-obl", false),
            ("suu-i-sem", false),
            ("suu-c", false),
            ("suu-t", false),
            ("exact-opt", true),
        ] {
            let policy = reg.build_named(&inst, name).unwrap();
            assert_eq!(policy.is_stationary(), stationary, "{name}");
        }
    }

    #[test]
    fn every_family_is_registered() {
        let reg = standard_registry();
        let names = reg.names();
        for expected in [
            "best-machine",
            "exact-opt",
            "gang-sequential",
            "greedy-lr",
            "round-robin",
            "suu-c",
            "suu-i-obl",
            "suu-i-sem",
            "suu-t",
        ] {
            assert!(
                names.contains(&expected),
                "{expected} missing from {names:?}"
            );
        }
    }

    #[test]
    fn every_family_builds_and_completes_on_independent_jobs() {
        let reg = standard_registry();
        let inst = independent(6);
        let eval = Evaluator::seeded(5, 42);
        for name in reg.names() {
            let report = eval
                .run_spec(&reg, &inst, &PolicySpec::new(name))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(report.all_completed(), "{name} hit the step cap");
            assert_eq!(report.total_ineligible(), 0, "{name} violated eligibility");
        }
    }

    #[test]
    fn capability_gates_fire() {
        let reg = standard_registry();
        let mut rng = SmallRng::seed_from_u64(5);
        let cs = generators::random_chain_set(8, 3, &mut rng);
        let chained = Arc::new(workload::uniform_unrelated(
            3,
            8,
            0.2,
            0.9,
            Precedence::Chains(cs),
            &mut rng,
        ));
        // Independent-only families refuse chains…
        for name in ["suu-i-obl", "suu-i-sem"] {
            assert!(matches!(
                reg.build_named(&chained, name),
                Err(RegistryError::UnsupportedStructure { .. })
            ));
        }
        // …while the chain/forest/dag families accept them.
        for name in ["suu-c", "suu-t", "greedy-lr", "exact-opt"] {
            reg.build_named(&chained, name)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        // General DAGs stop the forest family too.
        let dag = generators::layered_dag(8, 3, 0.3, &mut rng);
        let dag_inst = Arc::new(workload::uniform_unrelated(
            3,
            8,
            0.2,
            0.9,
            Precedence::Dag(dag),
            &mut rng,
        ));
        assert!(matches!(
            reg.build_named(&dag_inst, "suu-t"),
            Err(RegistryError::UnsupportedStructure { .. })
        ));
    }

    #[test]
    fn params_flow_through_and_typos_are_rejected() {
        let reg = standard_registry();
        let inst = independent(5);
        assert!(reg.build_named(&inst, "suu-c(seed=9,delay=false)").is_ok());
        assert!(matches!(
            reg.build_named(&inst, "suu-c(sead=9)"),
            Err(RegistryError::UnknownParams { .. })
        ));
        assert!(matches!(
            reg.build_named(&inst, "suu-c(seed=notanumber)"),
            Err(RegistryError::BadParam { .. })
        ));
    }

    #[test]
    fn exact_opt_refuses_large_instances() {
        let reg = standard_registry();
        let inst = independent(6);
        assert!(matches!(
            reg.build_named(&inst, "exact-opt(max_jobs=3)"),
            Err(RegistryError::BuildFailed { .. })
        ));
    }

    #[test]
    fn exact_opt_beats_or_matches_every_policy_in_simulation() {
        let reg = standard_registry();
        let inst = independent(5);
        let eval = Evaluator::seeded(300, 7);
        let opt_mean = eval
            .run_spec(&reg, &inst, &PolicySpec::new("exact-opt"))
            .unwrap()
            .mean_makespan();
        for name in ["gang-sequential", "round-robin", "suu-i-obl"] {
            let mean = eval
                .run_spec(&reg, &inst, &PolicySpec::new(name))
                .unwrap()
                .mean_makespan();
            // Sampling noise allowance: OPT should not lose by a margin.
            assert!(
                opt_mean <= mean * 1.15 + 0.5,
                "{name}: OPT {opt_mean:.2} vs {mean:.2}"
            );
        }
    }
}
