//! `SUU-I-SEM`: the semioblivious `O(log log min(m,n))`-approximation
//! (Theorem 4).
//!
//! The schedule runs in **rounds** with doubling mass targets: round `k`
//! plays the rounded `LP1(J_k, 2^{k−2})` timetable on the jobs `J_k` still
//! uncompleted, for `k = 1..K` with `K = ⌈log₂ log₂ min(m,n)⌉ + 3`. A job
//! surviving round `k` must have hidden threshold `−log₂ r_j > 2^{k−2}`,
//! so successive rounds chase the (doubly-exponentially unlikely) tail of
//! the hidden draws; the paper's competitive analysis shows each round
//! costs `O(T_OFF({r_j}))`.
//!
//! After `K` rounds:
//! * if `n ≤ m`: remaining jobs run **one at a time on all machines**
//!   (expected constant steps each at the reached mass level);
//! * if `m < n`: the round-`K` timetable is repeated until completion
//!   (load halves in expectation every repetition — Theorem 4's appendix
//!   case).

use crate::lp1::solve_lp1;
use crate::rounding::round_lp1;
use crate::AlgoError;
use std::collections::HashMap;
use std::sync::Arc;
use suu_core::{BitSet, JobId, MachineId, SuuInstance, Timetable};
use suu_sim::{Assignment, Decision, Policy, StateView};

/// Bound on memoized timetables (keyed by round + remaining set) kept per
/// policy instance. Trials within a worker share the cache.
const CACHE_CAP: usize = 4096;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Playing LP rounds `1..=K`.
    Rounds,
    /// Post-K, `n ≤ m`: all machines gang on one job at a time.
    GangFallback,
    /// Post-K, `m < n`: repeat the round-K timetable.
    RepeatFallback,
}

/// Execution statistics of the most recent run (for the `fig_rounds`
/// experiment).
#[derive(Debug, Clone, Copy, Default)]
pub struct SemStats {
    /// Highest round whose timetable was (at least partially) played.
    pub rounds_used: u32,
    /// Whether the post-K fallback was entered.
    pub fallback_entered: bool,
}

/// The semioblivious rounds policy.
pub struct SemPolicy {
    inst: Arc<SuuInstance>,
    /// Job subset this policy is responsible for (`None` = all jobs).
    subset: Option<Vec<u32>>,
    k_max: u32,
    name: String,

    // --- per-execution state ---
    phase: Phase,
    round: u32,
    table: Option<Timetable>,
    /// Absolute time the current table (or the repeat cycle) began.
    table_start: u64,
    /// Cyclic row-change distances of the repeat-fallback table.
    repeat_change: Vec<Option<u64>>,
    stats: SemStats,

    // --- cross-execution memoization ---
    cache: HashMap<(u32, Vec<u32>), Timetable>,
}

impl SemPolicy {
    /// Build `SUU-I-SEM` over all jobs of the instance (independent jobs).
    pub fn build(inst: Arc<SuuInstance>) -> Result<Self, AlgoError> {
        Self::for_jobs(inst, None)
    }

    /// Build over a job subset: the policy only ever schedules listed jobs
    /// and idles once they are all complete. Used as the long-job
    /// sub-schedule inside `SUU-C` and by `SUU-T` blocks.
    pub fn for_jobs(inst: Arc<SuuInstance>, subset: Option<Vec<u32>>) -> Result<Self, AlgoError> {
        let n_eff = subset.as_ref().map_or(inst.num_jobs(), Vec::len);
        let k_max = k_rounds(inst.num_machines(), n_eff);
        Ok(SemPolicy {
            inst,
            subset,
            k_max,
            name: "SUU-I-SEM".to_string(),
            phase: Phase::Rounds,
            round: 0,
            table: None,
            table_start: 0,
            repeat_change: Vec::new(),
            stats: SemStats::default(),
            cache: HashMap::new(),
        })
    }

    /// The round bound `K = ⌈log₂ log₂ min(m,n)⌉ + 3`.
    pub fn k_max(&self) -> u32 {
        self.k_max
    }

    /// Stats of the most recent execution.
    pub fn stats(&self) -> SemStats {
        self.stats
    }

    /// `true` once every job this policy owns has completed.
    pub fn is_done(&self, remaining: &BitSet) -> bool {
        match &self.subset {
            None => remaining.is_empty(),
            Some(jobs) => jobs.iter().all(|&j| !remaining.contains(j)),
        }
    }

    /// Jobs of the subset still remaining, in increasing id order.
    fn my_remaining(&self, remaining: &BitSet) -> Vec<u32> {
        match &self.subset {
            None => remaining.iter().collect(),
            Some(jobs) => jobs
                .iter()
                .copied()
                .filter(|&j| remaining.contains(j))
                .collect(),
        }
    }

    /// Mass target of round `k` (1-based): `2^(k-2)`, i.e. `1/2, 1, 2, …`.
    fn target(k: u32) -> f64 {
        (2.0f64).powi(k as i32 - 2)
    }

    fn compute_table(&mut self, k: u32, jobs: &[u32]) -> Timetable {
        let key = (k, jobs.to_vec());
        if let Some(t) = self.cache.get(&key) {
            return t.clone();
        }
        let table = match solve_lp1(&self.inst, jobs, Self::target(k))
            .and_then(|sol| round_lp1(&self.inst, &sol))
        {
            Ok((assignment, _)) => assignment.to_timetable(),
            // LP failures cannot occur for valid instances; degrade to an
            // explicit gang step rather than crashing mid-simulation.
            Err(_) => gang_table(&self.inst, jobs),
        };
        if self.cache.len() >= CACHE_CAP {
            self.cache.clear();
        }
        self.cache.insert(key, table.clone());
        table
    }
}

/// One-step timetable ganging all machines on the first listed job.
fn gang_table(inst: &SuuInstance, jobs: &[u32]) -> Timetable {
    let mut t = Timetable::idle(inst.num_machines(), 1);
    if let Some(&j) = jobs.first() {
        for i in 0..inst.num_machines() {
            t.set(0, MachineId(i as u32), Some(JobId(j)));
        }
    }
    t
}

/// `K = ⌈log₂ log₂ min(m,n)⌉ + 3` (with the argument clamped to ≥ 4 so the
/// nested log is defined and ≥ 1).
pub fn k_rounds(m: usize, n: usize) -> u32 {
    let v = m.min(n).max(4) as f64;
    (v.log2().log2().ceil() as u32) + 3
}

impl Policy for SemPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn reset(&mut self) {
        self.phase = Phase::Rounds;
        self.round = 0;
        self.table = None;
        self.table_start = 0;
        self.repeat_change.clear();
        self.stats = SemStats::default();
    }

    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
        let remaining = self.my_remaining(view.remaining);
        if remaining.is_empty() {
            return Decision::HOLD; // idle until someone else's jobs move
        }

        loop {
            match self.phase {
                Phase::Rounds => {
                    // Progress is anchored to absolute time: the current
                    // table plays rows `table_start..table_start + len`,
                    // and the wake-up chain below guarantees we are
                    // consulted at the exhaustion step exactly.
                    let exhausted = match &self.table {
                        None => true,
                        Some(t) => view.time >= self.table_start + t.len() as u64,
                    };
                    if exhausted {
                        self.round += 1;
                        if self.round > self.k_max {
                            // Post-K behaviour depends on n vs m (paper
                            // compares the *instance* sizes).
                            let n_eff = self.subset.as_ref().map_or(view.n, Vec::len);
                            self.stats.fallback_entered = true;
                            if n_eff <= view.m {
                                self.phase = Phase::GangFallback;
                            } else {
                                self.phase = Phase::RepeatFallback;
                                self.table_start = view.time;
                                // Keep the round-K table; if it is somehow
                                // missing/empty, degrade to gang.
                                match self.table.as_ref() {
                                    Some(t) if !t.is_empty() => {
                                        self.repeat_change = t.cyclic_change_distances();
                                    }
                                    _ => self.phase = Phase::GangFallback,
                                }
                            }
                            continue;
                        }
                        self.stats.rounds_used = self.round;
                        let table = self.compute_table(self.round, &remaining);
                        debug_assert!(!table.is_empty(), "round table must be non-empty");
                        self.table = Some(table);
                        self.table_start = view.time;
                    }
                    let t = self.table.as_ref().expect("table set above");
                    let pos = (view.time - self.table_start) as usize;
                    for i in 0..view.m {
                        out.set_slot(i, t.get(pos, MachineId(i as u32)));
                    }
                    // Hold through the run of identical rows; the run ends
                    // at a row change or at the round boundary.
                    let run = t.run_length_from(pos) as u64;
                    return Decision::wake_at(view.time + run);
                }
                Phase::GangFallback => {
                    // Pure function of the remaining set.
                    out.fill(Some(JobId(remaining[0])));
                    return Decision::HOLD;
                }
                Phase::RepeatFallback => {
                    let t = self.table.as_ref().expect("round-K table retained");
                    let pos = ((view.time - self.table_start) % t.len() as u64) as usize;
                    for i in 0..view.m {
                        out.set_slot(i, t.get(pos, MachineId(i as u32)));
                    }
                    return match self.repeat_change[pos] {
                        Some(d) => Decision::wake_at(view.time + d),
                        None => Decision::HOLD, // constant cycle
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use suu_core::{workload, Precedence};
    use suu_sim::{execute, ExecConfig, Semantics};

    #[test]
    fn k_rounds_formula() {
        assert_eq!(k_rounds(4, 4), 4); // log log 4 = 1
        assert_eq!(k_rounds(16, 100), 5); // log log 16 = 2
        assert_eq!(k_rounds(256, 300), 6); // log log 256 = 3
        assert_eq!(k_rounds(1, 1), 4); // clamped
                                       // K depends on min(m, n).
        assert_eq!(k_rounds(1_000_000, 4), 4);
    }

    #[test]
    fn completes_and_tracks_rounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let inst = Arc::new(workload::uniform_unrelated(
            4,
            8,
            0.3,
            0.95,
            Precedence::Independent,
            &mut rng,
        ));
        let mut policy = SemPolicy::build(inst.clone()).unwrap();
        let out = execute(&inst, &mut policy, &ExecConfig::default(), 1);
        assert!(out.completed);
        assert!(policy.stats().rounds_used >= 1);
        assert_eq!(out.ineligible_assignments, 0);
    }

    #[test]
    fn deterministic_completes_in_round_one() {
        let inst = Arc::new(workload::deterministic(3, 3, Precedence::Independent));
        let mut policy = SemPolicy::build(inst.clone()).unwrap();
        let out = execute(&inst, &mut policy, &ExecConfig::default(), 2);
        assert!(out.completed);
        assert_eq!(policy.stats().rounds_used, 1);
        assert!(!policy.stats().fallback_entered);
    }

    #[test]
    fn subset_policy_only_touches_its_jobs() {
        let inst = Arc::new(workload::homogeneous(2, 6, 0.5, Precedence::Independent));
        let mut policy = SemPolicy::for_jobs(inst.clone(), Some(vec![1, 4])).unwrap();
        policy.reset();
        let remaining = BitSet::full(6);
        let eligible = BitSet::full(6);
        let mut row = Assignment::new(2);
        for t in 0..50 {
            let view = StateView {
                time: t,
                epoch: 0,
                remaining: &remaining,
                eligible: &eligible,
                n: 6,
                m: 2,
            };
            row.clear();
            policy.decide(&view, &mut row);
            for j in row.slots().iter().flatten() {
                assert!(j.0 == 1 || j.0 == 4, "assigned outside subset: {j:?}");
            }
        }
    }

    #[test]
    fn is_done_respects_subset() {
        let inst = Arc::new(workload::homogeneous(1, 3, 0.5, Precedence::Independent));
        let policy = SemPolicy::for_jobs(inst, Some(vec![0, 2])).unwrap();
        let mut remaining = BitSet::full(3);
        assert!(!policy.is_done(&remaining));
        remaining.remove(0);
        remaining.remove(2);
        assert!(policy.is_done(&remaining), "job 1 is not ours");
    }

    #[test]
    fn reset_allows_reuse() {
        let mut rng = SmallRng::seed_from_u64(10);
        let inst = Arc::new(workload::uniform_unrelated(
            2,
            4,
            0.4,
            0.9,
            Precedence::Independent,
            &mut rng,
        ));
        let mut policy = SemPolicy::build(inst.clone()).unwrap();
        let mut makespans = Vec::new();
        for seed in 0..5 {
            let out = execute(&inst, &mut policy, &ExecConfig::default(), seed);
            assert!(out.completed);
            makespans.push(out.makespan);
        }
        // Different engine seeds explore different outcomes; the policy
        // must not leak state between runs (checked by completion above).
        assert!(makespans.iter().all(|&t| t >= 1));
    }

    #[test]
    fn both_semantics_complete() {
        let mut rng = SmallRng::seed_from_u64(11);
        let inst = Arc::new(workload::volunteer_grid(
            5,
            10,
            0.4,
            0.1,
            0.95,
            Precedence::Independent,
            &mut rng,
        ));
        for semantics in [Semantics::Suu, Semantics::SuuStar] {
            let mut policy = SemPolicy::build(inst.clone()).unwrap();
            let out = execute(
                &inst,
                &mut policy,
                &ExecConfig {
                    semantics,
                    max_steps: 1_000_000,
                    ..ExecConfig::default()
                },
                3,
            );
            assert!(out.completed, "{semantics:?}");
        }
    }
}
