//! # suu-algos — the SPAA'08 approximation algorithms for SUU
//!
//! This crate implements the paper's contribution
//! (Crutchfield, Dzunic, Fineman, Karger, Scott: *Improved Approximations
//! for Multiprocessor Scheduling Under Uncertainty*, SPAA 2008), on top of
//! the `suu-lp` / `suu-flow` / `suu-dag` / `suu-sim` substrates:
//!
//! | Paper artifact | Module |
//! |---|---|
//! | (LP1) relaxation, §3 | [`lp1`] |
//! | Lemma 2 rounding (grouping + integral flow) | [`rounding`] |
//! | `SUU-I-OBL`, the oblivious `O(log n)` schedule (Theorem 3) | [`suu_i_obl`] |
//! | `SUU-I-SEM`, the semioblivious `O(log log min(m,n))` schedule (Theorem 4) | [`suu_i_sem`] |
//! | (LP2) relaxation, §4 | [`lp2`] |
//! | Lemma 6 rounding (length-capped flow) | [`rounding`] |
//! | `SUU-C` for disjoint chains (Theorems 7 & 9: random delays, flattening, long-job segments) | [`suu_c`] |
//! | `SUU-T` for directed forests (Theorem 12, via rank decomposition) | [`suu_t`] |
//! | Baselines incl. the prior-art-style greedy and the `O(n)` sequential fallback | [`baselines`] |
//! | Exact `E[T_OPT]` for tiny instances (MDP subset DP) | [`opt`] |
//! | LP-based lower bounds (Lemma 1 / Lemma 5 style) | [`bounds`] |
//!
//! All schedule implementations are [`suu_sim::Policy`]s, so a single
//! engine executes and compares everything — and all of them (plus the
//! executable exact optimum, [`OptPolicy`]) are registered by name into
//! the unified policy registry via [`registry::standard_registry`], which
//! is how the scenario suite, the experiment binaries and the examples
//! construct schedules.

pub mod baselines;
pub mod bounds;
mod error;
pub mod lp1;
pub mod lp2;
pub mod opt;
pub mod registry;
pub mod rounding;
pub mod suu_c;
pub mod suu_i_obl;
pub mod suu_i_sem;
pub mod suu_t;

pub use error::AlgoError;
pub use opt::OptPolicy;
pub use registry::{register_standard, standard_registry};
pub use suu_c::{ChainConfig, ChainPolicy};
pub use suu_i_obl::OblPolicy;
pub use suu_i_sem::SemPolicy;
pub use suu_t::ForestPolicy;

#[cfg(test)]
mod tests;
