//! `SUU-I-OBL`: the oblivious `O(log n)`-approximation (Theorem 3).
//!
//! Solve `LP1(J, 1/2)`, round (Lemma 2), stack into a finite oblivious
//! timetable in which every job accrues log mass `≥ 1/2` — i.e. fails with
//! probability at most `2^(−1/2) < 1` — then repeat the timetable until all
//! jobs complete. Chernoff + union bound give `O(log n)` expected
//! repetitions, and `t_LP1(J,1/2) = O(E[T_OPT])` (Lemma 1), yielding the
//! `O(log n)` approximation.

use crate::lp1::solve_lp1;
use crate::rounding::round_lp1;
use crate::AlgoError;
use suu_core::{MachineId, SuuInstance, Timetable};
use suu_sim::{Assignment, Decision, Policy, StateView};

/// The repeated-timetable oblivious policy.
///
/// The timetable is computed once at construction (LP solve + rounding);
/// per-trial `reset` is free, so Monte-Carlo estimation is cheap. Being
/// oblivious, the row at time `t` is a pure function of `t mod period`,
/// so under the event engine the policy emits the row and a wake-up at
/// the next *row change* (precomputed per position) — stacked LP blocks
/// are long, so whole blocks are fast-forwarded.
pub struct OblPolicy {
    timetable: Timetable,
    /// Per position: steps until the (cyclic) row next changes; `None`
    /// when the whole table is one constant row.
    change_in: Vec<Option<u64>>,
    name: String,
}

impl OblPolicy {
    /// Build `SUU-I-OBL` for an independent-jobs instance.
    ///
    /// The precedence structure is ignored deliberately: this policy is
    /// only correct for independent jobs (every job eligible at all
    /// times). Callers with precedence constraints want [`crate::suu_c`]
    /// or [`crate::suu_t`].
    pub fn build(inst: &SuuInstance) -> Result<Self, AlgoError> {
        let jobs: Vec<u32> = (0..inst.num_jobs() as u32).collect();
        Self::for_jobs(inst, &jobs)
    }

    /// Build the repeated-timetable policy over a job subset (used by the
    /// `SUU-I-SEM` fallback and by tests).
    pub fn for_jobs(inst: &SuuInstance, jobs: &[u32]) -> Result<Self, AlgoError> {
        let sol = solve_lp1(inst, jobs, 0.5)?;
        let (assignment, _report) = round_lp1(inst, &sol)?;
        let timetable = assignment.to_timetable();
        let change_in = timetable.cyclic_change_distances();
        Ok(OblPolicy {
            timetable,
            change_in,
            name: "SUU-I-OBL".to_string(),
        })
    }

    /// Length of one repetition of the underlying timetable.
    pub fn period(&self) -> usize {
        self.timetable.len()
    }
}

impl Policy for OblPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn reset(&mut self) {}

    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
        if self.timetable.is_empty() {
            return Decision::HOLD;
        }
        let pos = (view.time % self.timetable.len() as u64) as usize;
        for i in 0..view.m {
            out.set_slot(i, self.timetable.get(pos, MachineId(i as u32)));
        }
        match self.change_in[pos] {
            // Wake exactly when the repeated timetable's row changes.
            Some(d) => Decision::wake_at(view.time + d),
            // Constant table: the row never changes; hold forever.
            None => Decision::HOLD,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use suu_core::{workload, Precedence};
    use suu_sim::{execute, ExecConfig};

    #[test]
    fn completes_small_instance() {
        let mut rng = SmallRng::seed_from_u64(1);
        let inst = workload::uniform_unrelated(3, 6, 0.2, 0.9, Precedence::Independent, &mut rng);
        let mut policy = OblPolicy::build(&inst).unwrap();
        assert!(policy.period() >= 1);
        let out = execute(&inst, &mut policy, &ExecConfig::default(), 2);
        assert!(out.completed);
        assert_eq!(out.ineligible_assignments, 0);
    }

    #[test]
    fn deterministic_instance_one_period() {
        // q = 0: every job completes the first time it is touched, so the
        // makespan is at most one timetable period.
        let inst = workload::deterministic(2, 4, Precedence::Independent);
        let mut policy = OblPolicy::build(&inst).unwrap();
        let out = execute(&inst, &mut policy, &ExecConfig::default(), 3);
        assert!(out.completed);
        assert!(out.makespan <= policy.period() as u64);
    }

    #[test]
    fn period_tracks_lp_value() {
        // Single machine, k jobs with q = 0.5 (ell = 1, clamped 0.5):
        // LP1 t* = k; period <= ceil(6k).
        let k = 5;
        let inst = workload::homogeneous(1, k, 0.5, Precedence::Independent);
        let policy = OblPolicy::build(&inst).unwrap();
        assert!(policy.period() as f64 <= 6.0 * k as f64 + 1.0);
        assert!(policy.period() >= k); // each job needs >= 1 distinct step
    }
}
