//! Legacy Monte-Carlo entry points — **deprecated** thin wrappers over
//! [`crate::Evaluator`].
//!
//! The original implementation distributed trials over a crossbeam channel
//! with `parking_lot` aggregation and seeded trial `k` as `base_seed + k`.
//! The [`crate::evaluate`] pipeline subsumes all of it — rayon-style
//! worker pool, SplitMix64-derived per-trial streams, policy reseeding —
//! and with the event-driven engine refactor every execution entry point
//! in the workspace now goes through the registry + [`crate::Evaluator`].
//! These spellings survive one deprecation cycle for out-of-tree callers
//! and then disappear.

#![allow(deprecated)]

use crate::engine::ExecOutcome;
use crate::evaluate::{EvalConfig, Evaluator};
use crate::policy::Policy;
use suu_core::SuuInstance;

/// Monte-Carlo parameters (legacy spelling of [`EvalConfig`]).
#[deprecated(since = "0.2.0", note = "use suu_sim::EvalConfig with Evaluator")]
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloConfig {
    /// Number of independent executions.
    pub trials: usize,
    /// Master seed for the per-trial randomness streams.
    pub base_seed: u64,
    /// Worker threads (`0` = one per available core).
    pub threads: usize,
    /// Engine configuration shared by all trials.
    pub exec: crate::engine::ExecConfig,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        let d = EvalConfig::default();
        MonteCarloConfig {
            trials: d.trials,
            base_seed: d.master_seed,
            threads: d.threads,
            exec: d.exec,
        }
    }
}

impl From<MonteCarloConfig> for EvalConfig {
    fn from(cfg: MonteCarloConfig) -> Self {
        EvalConfig {
            trials: cfg.trials,
            master_seed: cfg.base_seed,
            threads: cfg.threads,
            exec: cfg.exec,
        }
    }
}

/// Run `cfg.trials` executions of the policy produced by `make_policy`.
///
/// Wrapper over [`Evaluator::run`]; see there for the parallelism and
/// determinism contract. Outcomes are returned in trial order.
#[deprecated(
    since = "0.2.0",
    note = "use Evaluator::run (or Evaluator::run_spec through the registry)"
)]
pub fn run_trials<F, P>(
    inst: &SuuInstance,
    make_policy: F,
    cfg: &MonteCarloConfig,
) -> Vec<ExecOutcome>
where
    F: Fn() -> P + Sync,
    P: Policy,
{
    Evaluator::new(EvalConfig::from(*cfg))
        .run(inst, make_policy)
        .outcomes
}

/// Mean makespan of a batch of outcomes (requires all completed).
#[deprecated(since = "0.2.0", note = "use EvalReport::mean_makespan")]
pub fn mean_makespan(outcomes: &[ExecOutcome]) -> f64 {
    assert!(!outcomes.is_empty(), "no outcomes");
    outcomes.iter().map(|o| o.makespan as f64).sum::<f64>() / outcomes.len() as f64
}

/// Fraction of trials that completed within the step cap.
#[deprecated(since = "0.2.0", note = "use EvalReport::completion_rate")]
pub fn completion_rate(outcomes: &[ExecOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().filter(|o| o.completed).count() as f64 / outcomes.len() as f64
}
