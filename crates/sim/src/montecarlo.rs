//! Multi-threaded Monte-Carlo trials.
//!
//! Estimating `E[T_Σ]` requires many independent executions. Trials are
//! distributed to worker threads through a crossbeam channel (cheap dynamic
//! load balancing — LP-heavy policies make trial durations uneven) and
//! collected under a `parking_lot::Mutex`. Each trial gets a deterministic
//! seed derived from the base seed, so results are reproducible regardless
//! of thread interleaving.

use crate::engine::{execute, ExecConfig, ExecOutcome};
use crate::policy::Policy;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use suu_core::SuuInstance;

/// Monte-Carlo parameters.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloConfig {
    /// Number of independent executions.
    pub trials: usize,
    /// Base seed; trial `k` uses `base_seed + k`.
    pub base_seed: u64,
    /// Worker threads (`0` = one per available core).
    pub threads: usize,
    /// Engine configuration shared by all trials.
    pub exec: ExecConfig,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            trials: 100,
            base_seed: 0x5EED,
            threads: 0,
            exec: ExecConfig::default(),
        }
    }
}

/// Run `cfg.trials` executions of the policy produced by `make_policy`.
///
/// `make_policy` is invoked once per worker thread; the policy is `reset()`
/// before every trial by the engine. Outcomes are returned in trial order.
pub fn run_trials<F, P>(inst: &SuuInstance, make_policy: F, cfg: &MonteCarloConfig) -> Vec<ExecOutcome>
where
    F: Fn() -> P + Sync,
    P: Policy,
{
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        cfg.threads
    }
    .min(cfg.trials.max(1));

    let (tx, rx) = crossbeam::channel::unbounded::<usize>();
    for k in 0..cfg.trials {
        tx.send(k).expect("channel open");
    }
    drop(tx);

    let results: Mutex<Vec<Option<ExecOutcome>>> = Mutex::new(vec![None; cfg.trials]);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let rx = rx.clone();
            let results = &results;
            let make_policy = &make_policy;
            scope.spawn(move || {
                let mut policy = make_policy();
                while let Ok(k) = rx.recv() {
                    let mut rng = StdRng::seed_from_u64(cfg.base_seed.wrapping_add(k as u64));
                    let outcome = execute(inst, &mut policy, &cfg.exec, &mut rng);
                    results.lock()[k] = Some(outcome);
                }
            });
        }
    });

    results
        .into_inner()
        .into_iter()
        .map(|o| o.expect("every trial ran"))
        .collect()
}

/// Mean makespan of a batch of outcomes (requires all completed).
pub fn mean_makespan(outcomes: &[ExecOutcome]) -> f64 {
    assert!(!outcomes.is_empty(), "no outcomes");
    outcomes.iter().map(|o| o.makespan as f64).sum::<f64>() / outcomes.len() as f64
}

/// Fraction of trials that completed within the step cap.
pub fn completion_rate(outcomes: &[ExecOutcome]) -> f64 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().filter(|o| o.completed).count() as f64 / outcomes.len() as f64
}
