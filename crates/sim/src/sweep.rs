//! Budget-allocation plumbing for adaptive grid sweeps.
//!
//! A sweep evaluates many (scenario, policy) cells and wants to spend
//! trials only where the policy ranking is still statistically open. The
//! two pieces live here, in `suu-sim`, because they are pure statistics
//! with no knowledge of grids or caches:
//!
//! * [`BudgetLadder`] — the deterministic trial-budget schedule a cell
//!   climbs while its comparison is unresolved. The rungs are exactly
//!   the checkpoints `Evaluator::run_adaptive`'s internal round schedule
//!   visits (1.5× growth anchored at the initial budget), so a cell
//!   grown rung-by-rung through the cache's extend path lands on the
//!   same trial counts a single adaptive run would have, and stays
//!   bitwise reusable by either.
//! * [`PairedMargin`] — the winner margin between two policies evaluated
//!   under common random numbers, with a **conservative** 95% CI for
//!   the difference. The sweep only sees each policy's marginal
//!   `(mean, ci95)` (that is what cells cache); under CRN the
//!   per-trial outcomes are positively correlated, so
//!   `Var(A−B) = Var(A) + Var(B) − 2·Cov(A,B) ≤ Var(A) + Var(B)`
//!   and `sqrt(ci_a² + ci_b²)` is a valid upper bound on the paired
//!   CI half-width. Conservative means the sweep can stop *late* but
//!   never *early*: a margin declared resolved really is resolved.

/// Deterministic trial-budget schedule for one sweep cell.
///
/// Rungs follow the adaptive evaluator's round schedule: the first rung
/// is `initial`, every later rung is `n + max(n/2, 1)` (1.5× growth),
/// clamped to `max`. A pure function of its inputs — no state, no
/// clocks — so every re-run of a sweep climbs identical rungs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetLadder {
    /// First rung: the budget a cell gets before its first margin check.
    pub initial: usize,
    /// Hard cap: cells still unresolved here are reported as frontier
    /// ties rather than granted more trials.
    pub max: usize,
}

impl BudgetLadder {
    /// Create a ladder; `initial` is clamped into `1..=max`.
    pub fn new(initial: usize, max: usize) -> BudgetLadder {
        let max = max.max(1);
        BudgetLadder {
            initial: initial.clamp(1, max),
            max,
        }
    }

    /// The rung after a cell has `done` trials: `None` once the cap is
    /// reached, otherwise the next strictly-larger budget.
    pub fn next(&self, done: usize) -> Option<usize> {
        if done >= self.max {
            return None;
        }
        if done < self.initial {
            return Some(self.initial);
        }
        Some(done.saturating_add((done / 2).max(1)).min(self.max))
    }

    /// Every rung from the first to the cap, in order — the complete
    /// budget schedule a maximally-stubborn cell walks.
    pub fn rungs(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut done = 0usize;
        while let Some(next) = self.next(done) {
            out.push(next);
            done = next;
        }
        out
    }
}

/// Winner margin between two policies on one scenario, from their cached
/// marginal statistics, under the common-random-numbers guarantee that
/// both consumed identical per-trial streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedMargin {
    /// `mean_a − mean_b` — exact for the paired design, since the mean
    /// of per-trial differences equals the difference of means.
    pub delta: f64,
    /// Conservative 95% half-width for `delta`:
    /// `sqrt(ci_a² + ci_b²)`, an upper bound on the true paired CI
    /// because CRN makes the per-trial covariance non-negative.
    pub ci95: f64,
}

impl PairedMargin {
    /// Build the margin from two cached `(mean, ci95)` marginals.
    pub fn from_marginals(mean_a: f64, ci_a: f64, mean_b: f64, ci_b: f64) -> PairedMargin {
        PairedMargin {
            delta: mean_a - mean_b,
            ci95: (ci_a * ci_a + ci_b * ci_b).sqrt(),
        }
    }

    /// `true` when the 95% CI no longer straddles zero — the ranking of
    /// the pair is statistically resolved and needs no more trials.
    pub fn resolved(&self) -> bool {
        self.delta.abs() > self.ci95
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_matches_adaptive_round_schedule() {
        // The evaluator's rounds: target = done + max(done/2, 1), capped.
        let ladder = BudgetLadder::new(32, 1024);
        let mut expect = Vec::new();
        let mut done = 32usize;
        expect.push(done);
        while done < 1024 {
            done = (done + (done / 2).max(1)).min(1024);
            expect.push(done);
        }
        assert_eq!(ladder.rungs(), expect);
        assert_eq!(&expect[..4], &[32, 48, 72, 108]);
        assert_eq!(*expect.last().expect("nonempty"), 1024);
    }

    #[test]
    fn ladder_is_strictly_increasing_and_capped() {
        for (initial, max) in [(1, 1), (1, 7), (5, 5), (10, 9), (0, 4), (3, 100)] {
            let ladder = BudgetLadder::new(initial, max);
            let rungs = ladder.rungs();
            assert!(!rungs.is_empty());
            assert!(rungs.windows(2).all(|w| w[0] < w[1]), "{rungs:?}");
            assert_eq!(*rungs.last().expect("nonempty"), ladder.max);
            assert_eq!(ladder.next(ladder.max), None);
            assert_eq!(ladder.next(usize::MAX), None);
        }
        // `initial` above `max` clamps rather than overshooting.
        assert_eq!(BudgetLadder::new(10, 9).rungs(), vec![9]);
    }

    #[test]
    fn ladder_resumes_from_arbitrary_counts() {
        // A cell resumed mid-ladder continues on the same schedule the
        // cold ladder walks once counts coincide.
        let ladder = BudgetLadder::new(8, 200);
        assert_eq!(ladder.next(0), Some(8));
        assert_eq!(ladder.next(8), Some(12));
        assert_eq!(ladder.next(12), Some(18));
        // Resuming from a count below `initial` tops up to `initial`.
        assert_eq!(ladder.next(5), Some(8));
        assert_eq!(ladder.next(199), Some(200));
    }

    #[test]
    fn margin_is_conservative_and_symmetric() {
        let m = PairedMargin::from_marginals(10.0, 3.0, 7.0, 4.0);
        assert_eq!(m.delta, 3.0);
        assert_eq!(m.ci95, 5.0); // sqrt(9 + 16)
        assert!(m.ci95 >= 4.0, "bound dominates the wider marginal");
        assert!(!m.resolved(), "CI straddles zero");

        let flipped = PairedMargin::from_marginals(7.0, 4.0, 10.0, 3.0);
        assert_eq!(flipped.delta, -m.delta);
        assert_eq!(flipped.ci95, m.ci95);
        assert_eq!(flipped.resolved(), m.resolved());
    }

    #[test]
    fn margin_resolution_thresholds() {
        assert!(PairedMargin {
            delta: 5.1,
            ci95: 5.0
        }
        .resolved());
        assert!(PairedMargin {
            delta: -5.1,
            ci95: 5.0
        }
        .resolved());
        assert!(
            !PairedMargin {
                delta: 5.0,
                ci95: 5.0
            }
            .resolved(),
            "tie on the boundary"
        );
        assert!(
            !PairedMargin {
                delta: 0.0,
                ci95: 0.0
            }
            .resolved(),
            "exact tie stays open"
        );
    }
}
