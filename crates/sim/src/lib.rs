//! # suu-sim — discrete-time execution engine for SUU schedules
//!
//! The paper's platform — a set of machines that succeed or fail
//! probabilistically each unit step — is exactly a discrete-time stochastic
//! simulator, and this crate is that simulator. It executes any
//! [`Policy`] (a schedule in the paper's sense: a function from history and
//! time to a machine→job assignment) against a
//! [`suu_core::SuuInstance`] under either problem semantics:
//!
//! * [`Semantics::Suu`] — the original formulation: each step, job `j`
//!   survives with probability `∏_{i∈M_j,t} q_ij` (independent coin per
//!   step).
//! * [`Semantics::SuuStar`] — the Appendix A reformulation via the
//!   Principle of Deferred Decisions: a single hidden uniform draw `r_j`
//!   per job; `j` completes once its accrued log mass reaches
//!   `−log₂ r_j`.
//!
//! Theorem 10 of the paper proves the two induce identical history
//! distributions; our integration tests verify this empirically with a
//! chi-square test (see `fig_equivalence` in the bench crate).
//!
//! A multi-threaded [`montecarlo`] harness runs many seeded trials
//! (crossbeam channel for work distribution, parking_lot for aggregation)
//! and [`stats`] summarizes makespan distributions.

pub mod engine;
pub mod montecarlo;
pub mod policy;
pub mod stats;
pub mod trace;

pub use engine::{execute, ExecConfig, ExecOutcome, Semantics};
pub use montecarlo::{run_trials, MonteCarloConfig};
pub use policy::{Policy, StateView};
pub use stats::Summary;
pub use trace::{Trace, TraceStep, Tracing};

#[cfg(test)]
mod tests;
