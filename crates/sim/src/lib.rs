//! # suu-sim — event-driven execution core for SUU schedules
//!
//! The paper's platform — a set of machines that succeed or fail
//! probabilistically each unit step — is exactly a discrete-time stochastic
//! simulator, and this crate is that simulator. It executes any
//! [`Policy`] (a schedule in the paper's sense: a function from history and
//! time to a machine→job assignment) against a
//! [`suu_core::SuuInstance`] under either problem semantics:
//!
//! * [`Semantics::Suu`] — the original formulation: each step, job `j`
//!   survives with probability `∏_{i∈M_j,t} q_ij` (independent coin per
//!   step).
//! * [`Semantics::SuuStar`] — the Appendix A reformulation via the
//!   Principle of Deferred Decisions: a single hidden uniform draw `r_j`
//!   per job; `j` completes once its accrued log mass reaches
//!   `−log₂ r_j`.
//!
//! Theorem 10 of the paper proves the two induce identical history
//! distributions; our integration tests verify this empirically with a
//! chi-square test (see `fig_equivalence` in the bench crate).
//!
//! Since the paper's schedules may only observe *completions*, execution
//! is organized around **decision epochs**: policies are consulted via
//! [`Policy::decide`] only when the eligible set changes or at a wake-up
//! they declared, and the default [`EngineKind::Events`] engine jumps
//! straight from event to event — `O(#completions · m)` instead of
//! `O(makespan · m)`. The dense per-step loop survives as
//! [`EngineKind::Dense`], the differential-testing oracle that must (and
//! does, bitwise) agree with the fast path. See [`engine`] for the
//! fast-forwarding math.
//!
//! Around the engine sit the two pieces every experiment is built from:
//!
//! * [`registry`] — the unified policy registry: schedules are named by a
//!   [`PolicySpec`] and built by [`PolicyFactory`]s with typed
//!   [`StructureClass`] capability declarations (independent ⊂ chains ⊂
//!   forest ⊂ DAG), so any policy can be constructed by name on any
//!   instance it supports.
//! * [`evaluate`] — the parallel, seed-deterministic [`Evaluator`]:
//!   trials fan out across worker threads with per-trial RNG streams
//!   derived from one master seed (engine and policy randomness in
//!   separate domains), producing bitwise-identical outcomes at any
//!   thread count. Its default [`Evaluator::run_stats`] path runs trials
//!   through the **batched SoA engine** ([`engine::batch`]) — stationary
//!   policies share one `decide` per distinct remaining set across a
//!   whole batch — and folds them into the streaming [`stats`] layer
//!   (Welford moments + P² quantile sketches with an exact small-sample
//!   fallback), so evaluation memory is independent of the trial count.
//!   Cells are **resumable** ([`Evaluator::extend_stats`]: extending
//!   `n → n+k` is bitwise a fresh `n+k` run) and grow **adaptively**
//!   ([`Evaluator::run_adaptive`]: deterministic sequential stopping on
//!   Student-t confidence intervals); [`Evaluator::run_paired`] compares
//!   two policies per trial on common random numbers so the variance of
//!   the difference drives the comparison budget.

pub mod engine;
pub mod evaluate;
pub mod policy;
pub mod registry;
pub mod stats;
pub mod sweep;
pub mod trace;

pub use engine::batch::{execute_batch, BatchMetrics, BatchRunner, BatchTrial};
pub use engine::{execute, EngineKind, ExecConfig, ExecOutcome, Semantics};
pub use evaluate::{
    derive_seed, AdaptiveStats, EvalConfig, EvalReport, EvalStats, Evaluator, PairedStats,
};
pub use policy::{Assignment, Decision, Policy, StateView};
pub use registry::{
    factory, PolicyFactory, PolicyRegistry, PolicySpec, RegistryError, StructureClass,
};
pub use stats::{
    student_t_quantile, summarize, t_ci95_scale, MergeError, OutcomeAccumulator, P2Quantile,
    PairedDelta, Precision, StopReason, Streaming, Summary,
};
pub use sweep::{BudgetLadder, PairedMargin};
pub use trace::{Trace, TraceStep, Tracing};

#[cfg(test)]
mod tests;
