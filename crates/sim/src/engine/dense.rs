//! The step-by-step execution loop — the differential-testing oracle.
//!
//! Consults the policy at **every** unit step (the literal reading of the
//! paper's `Σ : (history, t) → assignment`), but draws job-completion
//! randomness per *segment* from the same counter-based per-job streams
//! as the event engine (see the module docs of [`crate::engine`]): at
//! every decision epoch each running job starts a fresh sub-run — SUU*
//! re-bases its linear accrual `base + k·µ`, SUU samples one geometric
//! countdown — so a policy honoring the hold contract produces a
//! bitwise-identical [`ExecOutcome`] under both engines.

use super::{clamp_wake, geometric_steps, ExecConfig, ExecOutcome, JobRandomness, Semantics};
use crate::policy::{Assignment, Policy, StateView};
use suu_core::{EligibilityTracker, MachineId, SuuInstance};

/// Execute `policy` on `inst` one unit step at a time.
pub fn execute_dense(
    inst: &SuuInstance,
    policy: &mut dyn Policy,
    cfg: &ExecConfig,
    seed: u64,
) -> ExecOutcome {
    let n = inst.num_jobs();
    let m = inst.num_machines();
    policy.reset();

    let dag = inst.precedence().to_dag(n);
    let mut tracker = EligibilityTracker::new(&dag);
    let rnd = JobRandomness::new(seed);

    // SUU*: thresholds −log₂ r_j per job; SUU: per-segment coins instead.
    let thresholds: Vec<f64> = match cfg.semantics {
        Semantics::SuuStar => (0..n as u32).map(|j| rnd.threshold(j)).collect(),
        Semantics::Suu => Vec::new(),
    };
    let mut accrued = vec![0.0f64; n];
    let mut coin_draws = vec![0u32; n];
    let mut completion_time = vec![u64::MAX; n];

    // Per-job sub-run state (one sub-run per job per segment).
    let mut run_active = vec![false; n];
    let mut run_mass = vec![0.0f64; n];
    let mut run_base = vec![0.0f64; n]; // SUU*: accrued at sub-run start
    let mut run_steps = vec![0u64; n]; // SUU*: steps into the sub-run
    let mut run_left = vec![0u64; n]; // SUU: sampled countdown

    let mut busy_steps = 0u64;
    let mut idle_steps = 0u64;
    let mut ineligible = 0u64;

    // Scratch: per-job mass collected this step plus the jobs touched.
    let mut step_mass = vec![0.0f64; n];
    let mut seen = vec![false; n];
    let mut touched: Vec<u32> = Vec::with_capacity(m);
    let mut out = Assignment::new(m);

    // Epoch tracking mirroring the event engine: a new epoch at t = 0,
    // after any completion, and at the (clamped) wake-up declared at the
    // previous epoch. Decisions returned at non-epoch steps are obeyed as
    // assignments (the oracle role) but their wake-up is ignored, exactly
    // as the event engine never sees them.
    let mut wake: Option<u64> = None;
    let mut epoch_pending = true;

    let mut t = 0u64;
    while !tracker.all_done() {
        if t >= cfg.max_steps {
            return ExecOutcome {
                makespan: cfg.max_steps,
                completed: false,
                busy_steps,
                idle_steps,
                ineligible_assignments: ineligible,
                completion_time,
            };
        }

        out.clear();
        let decision = {
            let view = StateView {
                time: t,
                epoch: tracker.epoch(),
                remaining: tracker.remaining(),
                eligible: tracker.eligible(),
                n,
                m,
            };
            policy.decide(&view, &mut out)
        };

        if epoch_pending || wake == Some(t) {
            wake = clamp_wake(decision.next_wakeup, t);
            epoch_pending = false;
            // Every running job re-samples at an epoch, like the event
            // engine does when it re-decides.
            run_active.iter_mut().for_each(|a| *a = false);
        }

        touched.clear();
        for i in 0..m {
            match out.get(i) {
                None => idle_steps += 1,
                Some(j) => {
                    let ji = j.index();
                    debug_assert!(ji < n, "policy assigned out-of-range job");
                    if !tracker.remaining().contains(j.0) {
                        // Completed job: machine rests (allowed).
                        idle_steps += 1;
                    } else if !tracker.eligible().contains(j.0) {
                        ineligible += 1;
                    } else {
                        if !seen[ji] {
                            seen[ji] = true;
                            touched.push(j.0);
                        }
                        step_mass[ji] += inst.ell(MachineId(i as u32), j);
                        busy_steps += 1;
                    }
                }
            }
        }

        // Resolve per-job progress for this step.
        let mut any_completion = false;
        for &j in &touched {
            let ji = j as usize;
            let mass = step_mass[ji];
            step_mass[ji] = 0.0;
            seen[ji] = false;
            if mass <= 0.0 {
                continue; // only q=1 machines worked on it: no progress
            }
            if run_active[ji] && run_mass[ji] != mass {
                // Mid-segment mass change: only a policy violating the
                // hold contract can cause this; restart the sub-run so
                // the oracle stays well-defined.
                run_active[ji] = false;
            }
            if !run_active[ji] {
                run_active[ji] = true;
                run_mass[ji] = mass;
                match cfg.semantics {
                    Semantics::SuuStar => {
                        run_base[ji] = accrued[ji];
                        run_steps[ji] = 0;
                    }
                    Semantics::Suu => {
                        let u = rnd.coin(j, coin_draws[ji]);
                        coin_draws[ji] += 1;
                        run_left[ji] = geometric_steps(u, mass);
                    }
                }
            }
            let completes = match cfg.semantics {
                Semantics::SuuStar => {
                    run_steps[ji] += 1;
                    accrued[ji] = run_base[ji] + run_steps[ji] as f64 * mass;
                    accrued[ji] >= thresholds[ji]
                }
                Semantics::Suu => {
                    run_left[ji] = run_left[ji].saturating_sub(1);
                    run_left[ji] == 0
                }
            };
            if completes {
                completion_time[ji] = t + 1;
                tracker.complete(j);
                run_active[ji] = false;
                any_completion = true;
            }
        }
        if any_completion {
            epoch_pending = true;
        }

        t += 1;
    }

    ExecOutcome {
        makespan: t,
        completed: true,
        busy_steps,
        idle_steps,
        ineligible_assignments: ineligible,
        completion_time,
    }
}
