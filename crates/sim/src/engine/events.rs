//! The event-driven execution core: jump from decision epoch to decision
//! epoch.
//!
//! At each epoch the policy is consulted once, its assignment held fixed,
//! and the engine computes the *next event* directly:
//!
//! * **SUU\***: the crossing step of the linear accrual
//!   `accrued + k·µ ≥ threshold` has a closed form
//!   (`⌈(threshold − accrued)/µ⌉`, fixed up for float rounding);
//! * **SUU**: a geometric completion time is sampled by inversion from
//!   one per-segment coin (`p = 1 − 2^(−µ)` per step; memorylessness
//!   makes re-sampling at the next epoch distribution-exact);
//!
//! then `t` advances by the minimum over running jobs and the policy's
//! declared wake-up. Machine-step accounting is multiplied by the span,
//! so the returned [`ExecOutcome`] is **identical** — bitwise, including
//! counters and completion times — to what the dense oracle produces
//! from the same seed, at `O(#events · m)` instead of
//! `O(makespan · m)` cost.
//!
//! All per-trial working memory lives in an [`EventsScratch`]: the
//! one-shot [`execute_events`] builds a fresh one, while the batch
//! engine's non-stationary fallback keeps a single scratch across every
//! trial of a cell ([`execute_events_in`]), so the precedence DAG,
//! eligibility topology and per-job columns are built once instead of
//! once per trial.

use super::{clamp_wake, geometric_steps, star_steps, ExecConfig, ExecOutcome, JobRandomness};
use super::{Semantics, NEVER};
use crate::policy::{Assignment, Policy, StateView};
use suu_core::{EligibilityState, EligibilityTopology, MachineId, SuuInstance};

/// Reusable per-trial working state of the event engine: the shared
/// eligibility topology plus every per-job column and scratch buffer one
/// execution needs. Constructing it is the expensive part of a trial on
/// small instances (DAG materialization, successor lists, allocations);
/// resetting it is a handful of `fill`s.
pub(crate) struct EventsScratch {
    topo: EligibilityTopology,
    state: EligibilityState,
    thresholds: Vec<f64>,
    accrued: Vec<f64>,
    coin_draws: Vec<u32>,
    step_mass: Vec<f64>,
    seen: Vec<bool>,
    deadline: Vec<u64>,
    touched: Vec<u32>,
    out: Assignment,
}

impl EventsScratch {
    pub(crate) fn new(inst: &SuuInstance) -> Self {
        let n = inst.num_jobs();
        let m = inst.num_machines();
        let dag = inst.precedence().to_dag(n);
        let topo = EligibilityTopology::new(&dag);
        let state = topo.new_state();
        EventsScratch {
            topo,
            state,
            thresholds: Vec::with_capacity(n),
            accrued: vec![0.0; n],
            coin_draws: vec![0; n],
            step_mass: vec![0.0; n],
            seen: vec![false; n],
            deadline: vec![NEVER; n],
            touched: Vec::with_capacity(m),
            out: Assignment::new(m),
        }
    }
}

/// Execute `policy` on `inst`, fast-forwarding between decision epochs.
pub fn execute_events(
    inst: &SuuInstance,
    policy: &mut dyn Policy,
    cfg: &ExecConfig,
    seed: u64,
) -> ExecOutcome {
    execute_events_in(inst, policy, cfg, seed, &mut EventsScratch::new(inst))
}

/// [`execute_events`] against caller-owned scratch. `scratch` must have
/// been built from this `inst`; it is fully reset here, so reuse across
/// trials is invisible in the outcome (bitwise).
pub(crate) fn execute_events_in(
    inst: &SuuInstance,
    policy: &mut dyn Policy,
    cfg: &ExecConfig,
    seed: u64,
    s: &mut EventsScratch,
) -> ExecOutcome {
    let n = inst.num_jobs();
    let m = inst.num_machines();
    debug_assert_eq!(s.topo.num_jobs(), n, "scratch built for another instance");
    policy.reset();

    s.topo.reset_state(&mut s.state);
    let rnd = JobRandomness::new(seed);

    s.thresholds.clear();
    if cfg.semantics == Semantics::SuuStar {
        s.thresholds.extend((0..n as u32).map(|j| rnd.threshold(j)));
    }
    s.accrued.fill(0.0);
    s.coin_draws.fill(0);
    // `step_mass`/`seen` hold their all-zero/false invariant across
    // epochs *and* trials (every epoch resets what it touched), and
    // `deadline` entries are written before any read — no reset needed.
    let mut completion_time = vec![u64::MAX; n];

    let mut busy_steps = 0u64;
    let mut idle_steps = 0u64;
    let mut ineligible = 0u64;

    let mut t = 0u64;
    loop {
        if s.state.all_done() {
            return ExecOutcome {
                makespan: t,
                completed: true,
                busy_steps,
                idle_steps,
                ineligible_assignments: ineligible,
                completion_time,
            };
        }
        if t >= cfg.max_steps {
            return ExecOutcome {
                makespan: cfg.max_steps,
                completed: false,
                busy_steps,
                idle_steps,
                ineligible_assignments: ineligible,
                completion_time,
            };
        }

        // ---- decision epoch ----
        s.out.clear();
        let decision = {
            let view = StateView {
                time: t,
                epoch: s.state.epoch(),
                remaining: s.state.remaining(),
                eligible: s.state.eligible(),
                n,
                m,
            };
            policy.decide(&view, &mut s.out)
        };
        let wake = clamp_wake(decision.next_wakeup, t);

        // Classify machines under the held assignment (per-step rates).
        let mut busy_m = 0u64;
        let mut idle_m = 0u64;
        let mut inel_m = 0u64;
        s.touched.clear();
        for i in 0..m {
            match s.out.get(i) {
                None => idle_m += 1,
                Some(j) => {
                    let ji = j.index();
                    debug_assert!(ji < n, "policy assigned out-of-range job");
                    if !s.state.remaining().contains(j.0) {
                        idle_m += 1;
                    } else if !s.state.eligible().contains(j.0) {
                        inel_m += 1;
                    } else {
                        if !s.seen[ji] {
                            s.seen[ji] = true;
                            s.touched.push(j.0);
                        }
                        s.step_mass[ji] += inst.ell(MachineId(i as u32), j);
                        busy_m += 1;
                    }
                }
            }
        }

        // Sample/compute each running job's completion deadline.
        let mut next_completion = NEVER;
        for &j in &s.touched {
            let ji = j as usize;
            let mass = s.step_mass[ji];
            if mass <= 0.0 {
                s.deadline[ji] = NEVER; // only q=1 machines: no progress
                continue;
            }
            let steps = match cfg.semantics {
                Semantics::SuuStar => star_steps(s.accrued[ji], s.thresholds[ji], mass),
                Semantics::Suu => {
                    let u = rnd.coin(j, s.coin_draws[ji]);
                    s.coin_draws[ji] += 1;
                    geometric_steps(u, mass)
                }
            };
            s.deadline[ji] = t.saturating_add(steps);
            next_completion = next_completion.min(s.deadline[ji]);
        }

        let event_t = next_completion.min(wake.unwrap_or(NEVER));
        if event_t > cfg.max_steps {
            // No event inside the step cap: burn the remaining steps at
            // the held rates (exactly what the dense stepper would
            // accumulate) and report incomplete at the cap.
            let span = cfg.max_steps - t;
            busy_steps += busy_m * span;
            idle_steps += idle_m * span;
            ineligible += inel_m * span;
            for &j in &s.touched {
                s.step_mass[j as usize] = 0.0;
                s.seen[j as usize] = false;
            }
            t = cfg.max_steps;
            continue;
        }

        // ---- fast-forward to the event ----
        let span = event_t - t; // ≥ 1: wake is clamped past t, deadlines too
        busy_steps += busy_m * span;
        idle_steps += idle_m * span;
        ineligible += inel_m * span;

        for &j in &s.touched {
            let ji = j as usize;
            let mass = s.step_mass[ji];
            s.step_mass[ji] = 0.0;
            s.seen[ji] = false;
            if mass <= 0.0 {
                continue;
            }
            if cfg.semantics == Semantics::SuuStar {
                // Same expression as the dense stepper's final value for
                // this segment: base + k·µ with one multiply.
                s.accrued[ji] += span as f64 * mass;
            }
            if s.deadline[ji] == event_t {
                completion_time[ji] = event_t;
                s.state.complete(&s.topo, j);
            }
            // Survivors re-sample at the next epoch (geometric
            // memorylessness keeps SUU exact; SUU* just re-bases).
        }

        t = event_t;
    }
}
