//! The event-driven execution core: jump from decision epoch to decision
//! epoch.
//!
//! At each epoch the policy is consulted once, its assignment held fixed,
//! and the engine computes the *next event* directly:
//!
//! * **SUU\***: the crossing step of the linear accrual
//!   `accrued + k·µ ≥ threshold` has a closed form
//!   (`⌈(threshold − accrued)/µ⌉`, fixed up for float rounding);
//! * **SUU**: a geometric completion time is sampled by inversion from
//!   one per-segment coin (`p = 1 − 2^(−µ)` per step; memorylessness
//!   makes re-sampling at the next epoch distribution-exact);
//!
//! then `t` advances by the minimum over running jobs and the policy's
//! declared wake-up. Machine-step accounting is multiplied by the span,
//! so the returned [`ExecOutcome`] is **identical** — bitwise, including
//! counters and completion times — to what the dense oracle produces
//! from the same seed, at `O(#events · m)` instead of
//! `O(makespan · m)` cost.

use super::{clamp_wake, geometric_steps, star_steps, ExecConfig, ExecOutcome, JobRandomness};
use super::{Semantics, NEVER};
use crate::policy::{Assignment, Policy, StateView};
use suu_core::{EligibilityTracker, MachineId, SuuInstance};

/// Execute `policy` on `inst`, fast-forwarding between decision epochs.
pub fn execute_events(
    inst: &SuuInstance,
    policy: &mut dyn Policy,
    cfg: &ExecConfig,
    seed: u64,
) -> ExecOutcome {
    let n = inst.num_jobs();
    let m = inst.num_machines();
    policy.reset();

    let dag = inst.precedence().to_dag(n);
    let mut tracker = EligibilityTracker::new(&dag);
    let rnd = JobRandomness::new(seed);

    let thresholds: Vec<f64> = match cfg.semantics {
        Semantics::SuuStar => (0..n as u32).map(|j| rnd.threshold(j)).collect(),
        Semantics::Suu => Vec::new(),
    };
    let mut accrued = vec![0.0f64; n];
    let mut coin_draws = vec![0u32; n];
    let mut completion_time = vec![u64::MAX; n];

    let mut busy_steps = 0u64;
    let mut idle_steps = 0u64;
    let mut ineligible = 0u64;

    // Scratch, reused across epochs: per-job mass under the held
    // assignment, absolute completion deadlines, and the touched set.
    let mut step_mass = vec![0.0f64; n];
    let mut seen = vec![false; n];
    let mut deadline = vec![NEVER; n];
    let mut touched: Vec<u32> = Vec::with_capacity(m);
    let mut out = Assignment::new(m);

    let mut t = 0u64;
    loop {
        if tracker.all_done() {
            return ExecOutcome {
                makespan: t,
                completed: true,
                busy_steps,
                idle_steps,
                ineligible_assignments: ineligible,
                completion_time,
            };
        }
        if t >= cfg.max_steps {
            return ExecOutcome {
                makespan: cfg.max_steps,
                completed: false,
                busy_steps,
                idle_steps,
                ineligible_assignments: ineligible,
                completion_time,
            };
        }

        // ---- decision epoch ----
        out.clear();
        let decision = {
            let view = StateView {
                time: t,
                epoch: tracker.epoch(),
                remaining: tracker.remaining(),
                eligible: tracker.eligible(),
                n,
                m,
            };
            policy.decide(&view, &mut out)
        };
        let wake = clamp_wake(decision.next_wakeup, t);

        // Classify machines under the held assignment (per-step rates).
        let mut busy_m = 0u64;
        let mut idle_m = 0u64;
        let mut inel_m = 0u64;
        touched.clear();
        for i in 0..m {
            match out.get(i) {
                None => idle_m += 1,
                Some(j) => {
                    let ji = j.index();
                    debug_assert!(ji < n, "policy assigned out-of-range job");
                    if !tracker.remaining().contains(j.0) {
                        idle_m += 1;
                    } else if !tracker.eligible().contains(j.0) {
                        inel_m += 1;
                    } else {
                        if !seen[ji] {
                            seen[ji] = true;
                            touched.push(j.0);
                        }
                        step_mass[ji] += inst.ell(MachineId(i as u32), j);
                        busy_m += 1;
                    }
                }
            }
        }

        // Sample/compute each running job's completion deadline.
        let mut next_completion = NEVER;
        for &j in &touched {
            let ji = j as usize;
            let mass = step_mass[ji];
            if mass <= 0.0 {
                deadline[ji] = NEVER; // only q=1 machines: no progress
                continue;
            }
            let steps = match cfg.semantics {
                Semantics::SuuStar => star_steps(accrued[ji], thresholds[ji], mass),
                Semantics::Suu => {
                    let u = rnd.coin(j, coin_draws[ji]);
                    coin_draws[ji] += 1;
                    geometric_steps(u, mass)
                }
            };
            deadline[ji] = t.saturating_add(steps);
            next_completion = next_completion.min(deadline[ji]);
        }

        let event_t = next_completion.min(wake.unwrap_or(NEVER));
        if event_t > cfg.max_steps {
            // No event inside the step cap: burn the remaining steps at
            // the held rates (exactly what the dense stepper would
            // accumulate) and report incomplete at the cap.
            let span = cfg.max_steps - t;
            busy_steps += busy_m * span;
            idle_steps += idle_m * span;
            ineligible += inel_m * span;
            for &j in &touched {
                step_mass[j as usize] = 0.0;
                seen[j as usize] = false;
            }
            t = cfg.max_steps;
            continue;
        }

        // ---- fast-forward to the event ----
        let span = event_t - t; // ≥ 1: wake is clamped past t, deadlines too
        busy_steps += busy_m * span;
        idle_steps += idle_m * span;
        ineligible += inel_m * span;

        for &j in &touched {
            let ji = j as usize;
            let mass = step_mass[ji];
            step_mass[ji] = 0.0;
            seen[ji] = false;
            if mass <= 0.0 {
                continue;
            }
            if cfg.semantics == Semantics::SuuStar {
                // Same expression as the dense stepper's final value for
                // this segment: base + k·µ with one multiply.
                accrued[ji] += span as f64 * mass;
            }
            if deadline[ji] == event_t {
                completion_time[ji] = event_t;
                tracker.complete(j);
            }
            // Survivors re-sample at the next epoch (geometric
            // memorylessness keeps SUU exact; SUU* just re-bases).
        }

        t = event_t;
    }
}
