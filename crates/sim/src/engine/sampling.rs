//! Completion-time samplers shared by every engine, in scalar and
//! batched (wide) forms.
//!
//! Two inversions close the gap between "simulate every unit step" and
//! "jump to the next event":
//!
//! * **SUU** ([`geometric_steps`] / [`GeomSegment`]): per-step
//!   Bernoulli failures of constant per-step mass `µ` form a geometric
//!   distribution with failure probability `fail = 2^(−µ)`, inverted
//!   from one uniform draw as `T = 1 + ⌊ln(1−u)/ln(fail)⌋`.
//! * **SUU\*** ([`star_steps`]): the crossing step of the linear accrual
//!   `base + k·µ ≥ threshold` — a closed-form guess by division, fixed
//!   up by neighbor checks so the result is bitwise the dense stepper's
//!   first crossing.
//!
//! # Wide kernels
//!
//! The batch engine executes the *same* `(job, mass)` segment for many
//! trials at once, so both samplers come in [`LANES`]-wide forms
//! ([`GeomSegment::steps_wide`], [`star_steps_wide`]) whose inner loops
//! are plain unrolled array arithmetic — no intrinsics, shaped so the
//! autovectorizer can lift the divide/floor/ceil lanes. **Bitwise
//! equality is structural**: every lane evaluates exactly the scalar
//! expression on the same inputs (the shared-mass quantities
//! `fail`/`ln_fail` are hoisted into [`GeomSegment`], which the scalar
//! path also goes through), so wide and scalar cannot diverge. The
//! differential tests still assert it over edge-case masses (`u → 1`,
//! `mass → 0`, `mass = ∞`, denormal thresholds).

/// Sampled sub-run length that never completes within any reachable
/// horizon (stands in for "+∞").
pub const NEVER: u64 = u64::MAX;

/// Lane width of the wide kernels. Eight `f64`s = two AVX2 vectors (or
/// four NEON), enough unroll for the autovectorizer without blowing the
/// registers; trials beyond a multiple of [`LANES`] take the scalar
/// remainder path, which evaluates the identical expressions.
pub const LANES: usize = 8;

/// Shared clamp applied to the raw geometric inversion `ratio =
/// ln(1−u)/ln(fail)`: floor + 1, with overflow to [`NEVER`] and a floor
/// of one step.
#[inline]
fn geom_finish(ratio: f64) -> u64 {
    let t = ratio.floor() + 1.0;
    if !t.is_finite() || t >= 4.0e18 {
        NEVER
    } else if t < 1.0 {
        1
    } else {
        t as u64
    }
}

/// One constant-mass SUU segment's sampling constants: the per-step
/// failure probability `fail = 2^(−mass)` and its log, precomputed so a
/// plan cached across a batch pays the `exp2`/`ln` once per *plan* job
/// instead of once per trial per epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeomSegment {
    fail: f64,
    ln_fail: f64,
}

impl GeomSegment {
    /// Constants for a segment of per-step log mass `mass`.
    pub fn new(mass: f64) -> Self {
        let fail = (-mass).exp2();
        GeomSegment {
            fail,
            ln_fail: fail.ln(),
        }
    }

    /// Steps until success from one uniform draw `u ∈ [0, 1)`; bitwise
    /// identical to [`geometric_steps`] with this segment's mass.
    #[inline]
    pub fn steps(&self, u: f64) -> u64 {
        if self.fail <= 0.0 {
            return 1; // infinite mass: certain completion
        }
        if self.fail >= 1.0 {
            return NEVER; // mass underflowed to zero progress
        }
        geom_finish((1.0 - u).ln() / self.ln_fail)
    }

    /// [`GeomSegment::steps`] for [`LANES`] draws at once. Per lane this
    /// evaluates exactly the scalar expressions, so the outputs are
    /// bitwise identical to [`LANES`] scalar calls.
    // Indexed lane loops are the deliberate shape here: every loop walks
    // 0..LANES over fixed arrays, which the autovectorizer handles well.
    #[allow(clippy::needless_range_loop)]
    pub fn steps_wide(&self, us: &[f64; LANES], out: &mut [u64; LANES]) {
        if self.fail <= 0.0 {
            out.fill(1);
            return;
        }
        if self.fail >= 1.0 {
            out.fill(NEVER);
            return;
        }
        let mut ratio = [0.0f64; LANES];
        for l in 0..LANES {
            ratio[l] = (1.0 - us[l]).ln();
        }
        // Vectorizable: one constant divisor across the lanes.
        for l in 0..LANES {
            ratio[l] /= self.ln_fail;
        }
        for l in 0..LANES {
            out[l] = geom_finish(ratio[l]);
        }
    }
}

/// SUU: steps until success for a job receiving constant per-step mass
/// `mass > 0`, from one uniform draw `u ∈ [0, 1)` by inversion.
/// `P(T > k) = fail^k` with `fail = 2^(−mass)`, so
/// `T = 1 + ⌊ln(1−u) / ln(fail)⌋`.
pub fn geometric_steps(u: f64, mass: f64) -> u64 {
    GeomSegment::new(mass).steps(u)
}

/// The closed-form crossing guess `⌈(threshold − base)/mass⌉`.
#[inline]
fn star_guess(base: f64, threshold: f64, mass: f64) -> f64 {
    ((threshold - base) / mass).ceil()
}

/// Fix a crossing guess up (or down) to the exact first step `k` with
/// `base + k·mass ≥ threshold`, using **exactly** the expression the
/// dense engine evaluates per step — the bitwise anchor of all SUU\*
/// fast-forwarding. Float rounding puts the guess at most a couple of
/// neighbors off.
#[inline]
fn star_fixup(guess: f64, base: f64, threshold: f64, mass: f64) -> u64 {
    let mut k = if guess.is_finite() && guess >= 1.0 {
        if guess >= 4.0e18 {
            return NEVER;
        }
        guess as u64
    } else if guess == f64::INFINITY {
        // `(threshold − base)/mass` overflowed: a denormal mass against an
        // ordinary gap, or an infinite threshold (`r = 0` draw). The true
        // crossing is beyond any reachable horizon; without this the
        // fix-up loop below would crawl to `1 << 62` one step at a time.
        return NEVER;
    } else {
        1
    };
    while k > 1 && base + ((k - 1) as f64) * mass >= threshold {
        k -= 1;
    }
    while base + (k as f64) * mass < threshold {
        k += 1;
        if k >= 1 << 62 {
            return NEVER;
        }
    }
    k
}

/// SUU*: smallest `k ≥ 1` with `base + k·mass ≥ threshold` (see
/// [`star_fixup`]). Requires `mass > 0`.
pub fn star_steps(base: f64, threshold: f64, mass: f64) -> u64 {
    debug_assert!(mass > 0.0);
    if !mass.is_finite() {
        return 1;
    }
    star_fixup(star_guess(base, threshold, mass), base, threshold, mass)
}

/// [`star_steps`] for [`LANES`] trials of one `(job, mass)` segment at
/// once: the guess division/ceil runs as unrolled lanes (vectorizable —
/// shared divisor), then each lane is fixed up scalar. Per lane this is
/// exactly the scalar computation, so outputs are bitwise identical to
/// [`LANES`] scalar calls.
// Indexed lane loops over fixed 0..LANES arrays, as in `steps_wide`.
#[allow(clippy::needless_range_loop)]
pub fn star_steps_wide(
    bases: &[f64; LANES],
    thresholds: &[f64; LANES],
    mass: f64,
    out: &mut [u64; LANES],
) {
    debug_assert!(mass > 0.0);
    if !mass.is_finite() {
        out.fill(1);
        return;
    }
    let mut guess = [0.0f64; LANES];
    for l in 0..LANES {
        guess[l] = (thresholds[l] - bases[l]) / mass;
    }
    for l in 0..LANES {
        guess[l] = guess[l].ceil();
    }
    for l in 0..LANES {
        out[l] = star_fixup(guess[l], bases[l], thresholds[l], mass);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geom_segment_matches_free_function() {
        for &mass in &[1e-300, 1e-17, 1e-3, 0.5, 1.0, 64.0, 1e4, f64::INFINITY] {
            let seg = GeomSegment::new(mass);
            for &u in &[0.0, 0.01, 0.49, 0.51, 0.999, 1.0 - 1e-16] {
                assert_eq!(seg.steps(u), geometric_steps(u, mass), "mass {mass}, u {u}");
            }
        }
    }

    #[test]
    fn wide_kernels_match_scalar_lane_for_lane() {
        // Deterministic lane inputs covering the quantile range.
        let us: [f64; LANES] = core::array::from_fn(|l| l as f64 / LANES as f64);
        for &mass in &[1e-300, 1e-2, 1.0, 64.0, f64::INFINITY] {
            let seg = GeomSegment::new(mass);
            let mut wide = [0u64; LANES];
            seg.steps_wide(&us, &mut wide);
            for l in 0..LANES {
                assert_eq!(wide[l], seg.steps(us[l]), "geom mass {mass} lane {l}");
            }
        }
        let bases: [f64; LANES] = core::array::from_fn(|l| l as f64 * 0.37);
        let thresholds: [f64; LANES] = core::array::from_fn(|l| 1.0 + l as f64 * 1.1);
        for &mass in &[1e-3, 0.3, 1.0, 50.0, f64::INFINITY] {
            let mut wide = [0u64; LANES];
            star_steps_wide(&bases, &thresholds, mass, &mut wide);
            for l in 0..LANES {
                assert_eq!(
                    wide[l],
                    star_steps(bases[l], thresholds[l], mass),
                    "star mass {mass} lane {l}"
                );
            }
        }
    }
}
