//! The batched trial engine: B executions of one `(instance, policy)`
//! pair in a single lockstep pass over structure-of-arrays state.
//!
//! The per-trial engines pay the policy and topology costs once *per
//! trial*: every execution rebuilds the precedence DAG's successor lists,
//! and every decision epoch of every trial calls `decide`, even though a
//! stationary policy (gang, greedy matchings, exact OPT — anything whose
//! row is a pure function of the remaining set) returns the *same* row
//! for every trial sitting at the same remaining set. This module
//! amortizes both:
//!
//! * **Shared eligibility topology** — the DAG's successor lists and
//!   indegrees ([`suu_core::EligibilityTopology`]) are built once per
//!   batch; each trial holds only its own remaining/eligible columns
//!   ([`suu_core::EligibilityState`]).
//! * **SoA trial state** — accrued log-mass, SUU* thresholds, SUU coin
//!   counters and completion times live in flat `B × n` columns, advanced
//!   trial-by-trial in a lockstep sweep (every live trial moves one
//!   decision epoch per pass).
//! * **Shared decisions** — for stationary policies
//!   ([`Policy::is_stationary`]) the engine caches, per distinct
//!   remaining set, the decided row *and* its derived epoch plan (machine
//!   classification + per-job step mass). One `decide` at epoch 0 serves
//!   the whole batch; deeper epochs share across every trial that visits
//!   the same remaining set.
//!
//! # Bitwise equality
//!
//! For every seed the batched engine produces outcomes **bitwise
//! identical** to [`super::events::execute_events`] with that seed: the
//! per-epoch computation (classification order, `star_steps` /
//! `geometric_steps` expressions, counter updates) is the same code path
//! evaluated in the same order *within* a trial, and the counter-based
//! [`JobRandomness`] streams make the interleaving *across* trials
//! irrelevant. `tests/engine_differential.rs` asserts this across every
//! scenario family × registry policy × both semantics.
//!
//! Non-stationary policies cannot share decisions (their state evolves
//! within a trial), so for them — and for [`EngineKind::Dense`] — the
//! batch entry point degrades to per-trial execution, preserving the
//! equality guarantee trivially while keeping one uniform call site for
//! the evaluator.

use super::{geometric_steps, star_steps, ExecConfig, ExecOutcome, JobRandomness};
use super::{EngineKind, Semantics, NEVER};
use crate::policy::{Assignment, Policy, StateView};
use std::collections::HashMap;
use suu_core::{BitSet, EligibilityState, EligibilityTopology, MachineId, SuuInstance};

/// Seeds for one trial of a batch.
#[derive(Debug, Clone, Copy)]
pub struct BatchTrial {
    /// Seed of the engine's per-job randomness streams.
    pub engine_seed: u64,
    /// Seed handed to [`Policy::reseed`] before the trial, if any.
    /// Ignored on the stationary fast path (stationary policies have no
    /// internal randomness by contract).
    pub policy_seed: Option<u64>,
}

/// One decision epoch's shared, remaining-set-keyed work product: the
/// machine classification and per-job step masses derived from a
/// stationary policy's row. Everything here is a pure function of the
/// remaining set, so one plan serves every trial that visits that set.
struct EpochPlan {
    /// Machines running an eligible, uncompleted job.
    busy_m: u64,
    /// Machines idle or pointed at completed jobs.
    idle_m: u64,
    /// Machines pointed at ineligible jobs (violations).
    inel_m: u64,
    /// `(job, total per-step mass)` for each distinct running job, in
    /// first-seen machine order (the per-trial engines' `touched` order).
    running: Vec<(u32, f64)>,
}

/// Execute one trial per entry of `trials`, returning outcomes in trial
/// order.
///
/// Dispatch: stationary policy + [`EngineKind::Events`] takes the SoA
/// lockstep fast path; anything else falls back to per-trial
/// [`super::execute`] calls (bitwise identical by construction). Memory
/// is `O(B · n)` for a batch of `B` trials — callers stream chunks of a
/// larger run through this entry point to keep evaluation memory
/// independent of the total trial count.
pub fn execute_batch(
    inst: &SuuInstance,
    policy: &mut dyn Policy,
    cfg: &ExecConfig,
    trials: &[BatchTrial],
) -> Vec<ExecOutcome> {
    if policy.is_stationary() && cfg.engine == EngineKind::Events {
        execute_batch_stationary(inst, policy, cfg, trials)
    } else {
        trials
            .iter()
            .map(|trial| {
                if let Some(seed) = trial.policy_seed {
                    policy.reseed(seed);
                }
                super::execute(inst, policy, cfg, trial.engine_seed)
            })
            .collect()
    }
}

/// The SoA lockstep fast path. See the module docs for the layout and
/// the equality argument.
fn execute_batch_stationary(
    inst: &SuuInstance,
    policy: &mut dyn Policy,
    cfg: &ExecConfig,
    trials: &[BatchTrial],
) -> Vec<ExecOutcome> {
    let n = inst.num_jobs();
    let m = inst.num_machines();
    let b_count = trials.len();
    policy.reset();

    let dag = inst.precedence().to_dag(n);
    let topo = EligibilityTopology::new(&dag);

    // Per-trial randomness streams and SoA columns (trial-major: the
    // entry of trial `b`, job `j` lives at `b * n + j`).
    let rnds: Vec<JobRandomness> = trials
        .iter()
        .map(|t| JobRandomness::new(t.engine_seed))
        .collect();
    let thresholds: Vec<f64> = match cfg.semantics {
        Semantics::SuuStar => (0..b_count)
            .flat_map(|b| (0..n as u32).map(move |j| (b, j)))
            .map(|(b, j)| rnds[b].threshold(j))
            .collect(),
        Semantics::Suu => Vec::new(),
    };
    let mut accrued = vec![0.0f64; b_count * n];
    let mut coin_draws = vec![0u32; b_count * n];
    let mut completion_time = vec![u64::MAX; b_count * n];
    let mut t = vec![0u64; b_count];
    let mut busy_steps = vec![0u64; b_count];
    let mut idle_steps = vec![0u64; b_count];
    let mut ineligible = vec![0u64; b_count];
    let mut states: Vec<EligibilityState> = (0..b_count).map(|_| topo.new_state()).collect();

    // Shared decision cache and scratch for building plans.
    let mut plans: HashMap<BitSet, EpochPlan> = HashMap::new();
    let mut out = Assignment::new(m);
    let mut step_mass = vec![0.0f64; n];
    let mut seen = vec![false; n];
    // Per-epoch deadline scratch: only entries for the current plan's
    // running jobs are ever read, and they are rewritten per trial.
    let mut deadline = vec![NEVER; n];

    let mut outcomes: Vec<Option<ExecOutcome>> = (0..b_count).map(|_| None).collect();
    let mut live: Vec<usize> = (0..b_count).collect();

    // Lockstep sweeps: each pass advances every live trial by one
    // decision epoch (or retires it).
    while !live.is_empty() {
        live.retain(|&b| {
            let base = b * n;
            let state = &mut states[b];
            if state.all_done() {
                outcomes[b] = Some(ExecOutcome {
                    makespan: t[b],
                    completed: true,
                    busy_steps: busy_steps[b],
                    idle_steps: idle_steps[b],
                    ineligible_assignments: ineligible[b],
                    completion_time: completion_time[base..base + n].to_vec(),
                });
                return false;
            }
            if t[b] >= cfg.max_steps {
                outcomes[b] = Some(ExecOutcome {
                    makespan: cfg.max_steps,
                    completed: false,
                    busy_steps: busy_steps[b],
                    idle_steps: idle_steps[b],
                    ineligible_assignments: ineligible[b],
                    completion_time: completion_time[base..base + n].to_vec(),
                });
                return false;
            }

            // ---- decision epoch: one shared plan per remaining set ----
            // Probe by reference first: the common case is a hit (one
            // miss, B−1 hits per remaining set across a batch), and the
            // key BitSet is only cloned on the miss path.
            if !plans.contains_key(state.remaining()) {
                out.clear();
                let decision = {
                    let view = StateView {
                        time: t[b],
                        epoch: state.epoch(),
                        remaining: state.remaining(),
                        eligible: state.eligible(),
                        n,
                        m,
                    };
                    policy.decide(&view, &mut out)
                };
                // A wake-up request here would make the shared plan
                // unsound (and silently desync from the per-trial
                // engines), so treat it as a contract violation.
                assert!(
                    decision.next_wakeup.is_none(),
                    "policy {:?} declared is_stationary but requested a wake-up",
                    policy.name()
                );
                // Classify machines exactly as the event engine does.
                let mut busy_m = 0u64;
                let mut idle_m = 0u64;
                let mut inel_m = 0u64;
                let mut running: Vec<(u32, f64)> = Vec::new();
                for i in 0..m {
                    match out.get(i) {
                        None => idle_m += 1,
                        Some(j) => {
                            let ji = j.index();
                            debug_assert!(ji < n, "policy assigned out-of-range job");
                            if !state.remaining().contains(j.0) {
                                idle_m += 1;
                            } else if !state.eligible().contains(j.0) {
                                inel_m += 1;
                            } else {
                                if !seen[ji] {
                                    seen[ji] = true;
                                    running.push((j.0, 0.0));
                                }
                                step_mass[ji] += inst.ell(MachineId(i as u32), j);
                                busy_m += 1;
                            }
                        }
                    }
                }
                for (j, mass) in running.iter_mut() {
                    let ji = *j as usize;
                    *mass = step_mass[ji];
                    step_mass[ji] = 0.0;
                    seen[ji] = false;
                }
                plans.insert(
                    state.remaining().clone(),
                    EpochPlan {
                        busy_m,
                        idle_m,
                        inel_m,
                        running,
                    },
                );
            }
            let plan = &plans[state.remaining()];

            // ---- sample this trial's next completion under the plan ----
            let mut next_completion = NEVER;
            for &(j, mass) in &plan.running {
                let ji = j as usize;
                if mass <= 0.0 {
                    deadline[ji] = NEVER; // only q=1 machines: no progress
                    continue;
                }
                let steps = match cfg.semantics {
                    Semantics::SuuStar => {
                        star_steps(accrued[base + ji], thresholds[base + ji], mass)
                    }
                    Semantics::Suu => {
                        let u = rnds[b].coin(j, coin_draws[base + ji]);
                        coin_draws[base + ji] += 1;
                        geometric_steps(u, mass)
                    }
                };
                deadline[ji] = t[b].saturating_add(steps);
                next_completion = next_completion.min(deadline[ji]);
            }

            // Stationary policies never wake up, so the next event is the
            // next completion (or the step cap).
            if next_completion > cfg.max_steps {
                let span = cfg.max_steps - t[b];
                busy_steps[b] += plan.busy_m * span;
                idle_steps[b] += plan.idle_m * span;
                ineligible[b] += plan.inel_m * span;
                t[b] = cfg.max_steps;
                return true; // retired as incomplete on the next sweep
            }

            // ---- fast-forward this trial to the event ----
            let event_t = next_completion;
            let span = event_t - t[b];
            busy_steps[b] += plan.busy_m * span;
            idle_steps[b] += plan.idle_m * span;
            ineligible[b] += plan.inel_m * span;
            for &(j, mass) in &plan.running {
                let ji = j as usize;
                if mass <= 0.0 {
                    continue;
                }
                if cfg.semantics == Semantics::SuuStar {
                    accrued[base + ji] += span as f64 * mass;
                }
                if deadline[ji] == event_t {
                    completion_time[base + ji] = event_t;
                    state.complete(&topo, j);
                }
            }
            t[b] = event_t;
            true
        });
    }

    outcomes
        .into_iter()
        .map(|o| o.expect("every trial retired with an outcome"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::execute;
    use crate::policy::Decision;
    use suu_core::{workload, JobId, Precedence};

    /// Stationary: machines spread over the eligible set by rank.
    struct Spread;
    impl Policy for Spread {
        fn name(&self) -> &str {
            "spread"
        }
        fn reset(&mut self) {}
        fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
            let eligible: Vec<u32> = view.eligible.iter().collect();
            if !eligible.is_empty() {
                for i in 0..view.m {
                    out.set(i, JobId(eligible[i % eligible.len()]));
                }
            }
            Decision::HOLD
        }
        fn is_stationary(&self) -> bool {
            true
        }
    }

    /// Non-stationary: rotates assignments every step.
    struct Rotate;
    impl Policy for Rotate {
        fn name(&self) -> &str {
            "rotate"
        }
        fn reset(&mut self) {}
        fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
            let eligible: Vec<u32> = view.eligible.iter().collect();
            if !eligible.is_empty() {
                for i in 0..view.m {
                    let idx = (i as u64 + view.time) as usize % eligible.len();
                    out.set(i, JobId(eligible[idx]));
                }
            }
            Decision::step(view)
        }
    }

    fn seeds(count: usize, base: u64) -> Vec<BatchTrial> {
        (0..count)
            .map(|k| BatchTrial {
                engine_seed: crate::evaluate::derive_seed(base, k as u64, 0x45),
                policy_seed: None,
            })
            .collect()
    }

    #[test]
    fn stationary_batch_matches_per_trial_events_bitwise() {
        use rand::SeedableRng;
        let mut grng = rand::rngs::SmallRng::seed_from_u64(3);
        let dag = suu_dag::Dag::from_edges(7, &[(0, 2), (1, 2), (2, 5), (3, 6)]);
        let inst = workload::uniform_unrelated(3, 7, 0.2, 0.95, Precedence::Dag(dag), &mut grng);
        for semantics in [Semantics::Suu, Semantics::SuuStar] {
            let cfg = ExecConfig {
                semantics,
                ..ExecConfig::default()
            };
            let trials = seeds(32, 0xBA7C);
            let batched = execute_batch(&inst, &mut Spread, &cfg, &trials);
            let reference: Vec<ExecOutcome> = trials
                .iter()
                .map(|t| execute(&inst, &mut Spread, &cfg, t.engine_seed))
                .collect();
            assert_eq!(batched, reference, "{semantics:?}");
        }
    }

    #[test]
    fn non_stationary_fallback_matches_per_trial() {
        let inst = workload::homogeneous(2, 5, 0.5, Precedence::Independent);
        let cfg = ExecConfig::default();
        let trials = seeds(16, 0xF0);
        let batched = execute_batch(&inst, &mut Rotate, &cfg, &trials);
        let reference: Vec<ExecOutcome> = trials
            .iter()
            .map(|t| execute(&inst, &mut Rotate, &cfg, t.engine_seed))
            .collect();
        assert_eq!(batched, reference);
    }

    #[test]
    fn step_cap_trials_report_incomplete() {
        // One job making ~1e-8 mass per step: no trial can complete
        // within 50 steps, so every trial must hit the cap with identical
        // accounting to the per-trial engine.
        let inst = workload::homogeneous(2, 1, 0.999_999_99, Precedence::Independent);
        let cfg = ExecConfig {
            max_steps: 50,
            ..ExecConfig::default()
        };
        let trials = seeds(4, 7);
        let batched = execute_batch(&inst, &mut Spread, &cfg, &trials);
        let reference: Vec<ExecOutcome> = trials
            .iter()
            .map(|t| execute(&inst, &mut Spread, &cfg, t.engine_seed))
            .collect();
        assert_eq!(batched, reference);
        for o in &batched {
            assert!(!o.completed);
            assert_eq!(o.makespan, 50);
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let inst = workload::homogeneous(2, 2, 0.5, Precedence::Independent);
        let out = execute_batch(&inst, &mut Spread, &ExecConfig::default(), &[]);
        assert!(out.is_empty());
    }
}
