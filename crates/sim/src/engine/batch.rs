//! The batched trial engine: B executions of one `(instance, policy)`
//! pair in a single lockstep pass over structure-of-arrays state.
//!
//! The per-trial engines pay the policy and topology costs once *per
//! trial*: every execution rebuilds the precedence DAG's successor lists,
//! and every decision epoch of every trial calls `decide`, even though a
//! stationary policy (gang, greedy matchings, exact OPT — anything whose
//! row is a pure function of the remaining set) returns the *same* row
//! for every trial sitting at the same remaining set. This module
//! amortizes both, and — rebuilt around a profiler-guided hot loop —
//! keeps the steady state allocation-free:
//!
//! * **Shared eligibility topology** — the DAG's successor lists and
//!   indegrees ([`suu_core::EligibilityTopology`]) are built once per
//!   [`BatchRunner`]; each trial holds only its own remaining/eligible
//!   columns ([`suu_core::EligibilityState`]).
//! * **SoA trial state** — accrued log-mass, SUU* thresholds, SUU coin
//!   counters and completion times live in flat `B × n` columns, advanced
//!   in lockstep sweeps (every live trial moves one decision epoch per
//!   pass).
//! * **Word-keyed shared decisions** — for stationary policies
//!   ([`Policy::is_stationary`]) the engine caches, per distinct
//!   remaining set, the decided row's derived epoch plan (machine
//!   classification + per-job step mass + precomputed SUU segment
//!   constants). The cache is a [`suu_core::WordMap`] keyed directly on
//!   the remaining set's `u64` words — FNV-1a over the words, inline
//!   word-compare on probe, **no `BitSet` clones or hashes of wrapper
//!   objects on the hit path** — with hit/miss/eviction counters
//!   surfaced through [`BatchMetrics`].
//! * **Grouped wide sampling** — within a sweep, live trials are grouped
//!   by epoch plan and each running job's completion time is sampled
//!   [`sampling::LANES`] trials at a time through the wide kernels
//!   ([`sampling::star_steps_wide`], [`sampling::GeomSegment`]), which
//!   are structurally bitwise-identical to the scalar path.
//! * **Arena reuse** — epoch plans live in a flat arena inside the
//!   cache; all per-batch scratch (columns, eligibility states, grouping
//!   and plan-build buffers) persists inside the runner across `run`
//!   calls, so streaming a long cell through chunks allocates only the
//!   returned outcomes.
//!
//! The runner carries a [`suu_core::profile::PhaseProfiler`] bucketing
//! sweep wall time into decide / cache-lookup / sampling / state-update
//! phases (enabled via `SUU_PROFILE` or [`BatchRunner::with_profile`];
//! one branch per phase transition when off).
//!
//! # Bitwise equality
//!
//! For every seed the batched engine produces outcomes **bitwise
//! identical** to [`super::events::execute_events`] with that seed: the
//! per-epoch computation (classification order, `star_steps` /
//! `geometric_steps` expressions, counter updates) evaluates the same
//! expressions in the same order *within* a trial, and the counter-based
//! [`JobRandomness`] streams make the interleaving *across* trials
//! irrelevant. Grouping trials by plan only reorders work across
//! independent trials; the wide sampling kernels evaluate the scalar
//! expressions lane-for-lane (see [`super::sampling`]).
//! `tests/engine_differential.rs` asserts the equality across every
//! scenario family × registry policy × both semantics.
//!
//! Non-stationary policies cannot share decisions (their state evolves
//! within a trial), so for them — and for [`EngineKind::Dense`] — the
//! batch entry point degrades to per-trial execution (reusing one
//! [`EventsScratch`] across all trials on the event engine), preserving
//! the equality guarantee trivially while keeping one uniform call site
//! for the evaluator.

use super::events::{execute_events_in, EventsScratch};
use super::sampling::{star_steps, star_steps_wide, GeomSegment, LANES};
use super::{EngineKind, Semantics, NEVER};
use super::{ExecConfig, ExecOutcome, JobRandomness};
use crate::policy::{Assignment, Policy, StateView};
use suu_core::profile::{PhaseProfiler, ProfileMode, ProfileReport};
use suu_core::{EligibilityState, EligibilityTopology, MachineId, SuuInstance, WordMap};

/// Seeds for one trial of a batch.
#[derive(Debug, Clone, Copy)]
pub struct BatchTrial {
    /// Seed of the engine's per-job randomness streams.
    pub engine_seed: u64,
    /// Seed handed to [`Policy::reseed`] before the trial, if any.
    /// Ignored on the stationary fast path (stationary policies have no
    /// internal randomness by contract).
    pub policy_seed: Option<u64>,
}

/// Profiler phase ids (indices into [`PHASE_NAMES`]).
const PH_DECIDE: usize = 0;
const PH_CACHE: usize = 1;
const PH_SAMPLE: usize = 2;
const PH_UPDATE: usize = 3;
const PH_SWEEP: usize = 4;
/// Phase names of the batch hot loop, in id order: policy decisions and
/// plan building, decision-cache probes, completion-time sampling,
/// per-trial state advancement, and sweep bookkeeping (retire scan,
/// plan grouping, column setup).
const PHASE_NAMES: &[&str] = &[
    "decide",
    "cache-lookup",
    "sampling",
    "state-update",
    "sweep",
];

/// Default cap on cached epoch plans; reaching it wipes the cache
/// between sweeps (never mid-sweep: plan indices are borrowed by the
/// grouping buffer within a sweep). 32k plans ≈ a few MB on typical
/// instances — far above what any standard cell populates, so eviction
/// only triggers on adversarial remaining-set churn.
const DEFAULT_PLAN_CAP: usize = 1 << 15;

/// One running job of an epoch plan: its total per-step mass under the
/// held assignment and the precomputed SUU segment constants (paying the
/// `exp2`/`ln` once per cached plan instead of per trial per epoch).
/// Jobs whose total mass is `≤ 0` (only q=1 machines) are excluded at
/// plan build: they can never complete or accrue, exactly as the
/// per-trial engines skip them.
#[derive(Debug, Clone, Copy)]
struct RunJob {
    j: u32,
    mass: f64,
    geom: GeomSegment,
}

/// One decision epoch's shared, remaining-set-keyed work product: the
/// machine classification and the plan's running jobs (a slice of the
/// cache's flat arena). Everything here is a pure function of the
/// remaining set, so one plan serves every trial that visits that set.
#[derive(Debug, Clone, Copy)]
struct EpochPlan {
    /// Machines running an eligible, uncompleted job.
    busy_m: u64,
    /// Machines idle or pointed at completed jobs.
    idle_m: u64,
    /// Machines pointed at ineligible jobs (violations).
    inel_m: u64,
    /// `runs[run_start..run_start + run_len]` in the cache arena, in
    /// first-seen machine order (the per-trial engines' `touched` order).
    run_start: u32,
    run_len: u32,
}

/// The word-keyed decision cache: remaining-set words → epoch plan, with
/// hit/miss/eviction counters. Plans and their running jobs live in flat
/// arenas so cache (re)population allocates only on growth.
struct PlanCache {
    map: WordMap<u32>,
    plans: Vec<EpochPlan>,
    runs: Vec<RunJob>,
    cap: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    fn new(words_per_key: usize) -> Self {
        PlanCache {
            map: WordMap::new(words_per_key),
            plans: Vec::new(),
            runs: Vec::new(),
            cap: DEFAULT_PLAN_CAP,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Wipe between sweeps once over capacity (a soft cap: one sweep may
    /// overshoot it, since eviction never happens mid-sweep).
    fn maybe_evict(&mut self) {
        if self.plans.len() >= self.cap {
            self.evictions += self.plans.len() as u64;
            self.map.clear();
            self.plans.clear();
            self.runs.clear();
        }
    }
}

/// Per-run SoA columns and sweep scratch, owned by the runner and reused
/// across `run` calls (steady state allocates nothing but outcomes).
/// Trial-major layout: the entry of trial `b`, job `j` lives at
/// `b * n + j`.
struct Scratch {
    rnds: Vec<JobRandomness>,
    thresholds: Vec<f64>,
    accrued: Vec<f64>,
    coin_draws: Vec<u32>,
    completion_time: Vec<u64>,
    t: Vec<u64>,
    busy: Vec<u64>,
    idle: Vec<u64>,
    inel: Vec<u64>,
    states: Vec<EligibilityState>,
    /// Live trial indices, in trial order.
    live: Vec<u32>,
    /// Per-sweep `(plan index, trial)` pairs, sorted to group by plan.
    order: Vec<(u32, u32)>,
    // Plan-build scratch.
    out: Assignment,
    step_mass: Vec<f64>,
    seen: Vec<bool>,
    touched: Vec<u32>,
    // Per-group sampling scratch: `deadlines[jr * group_len + gi]` is
    // running-job `jr`'s deadline for the group's `gi`-th trial;
    // `next_comp[gi]` is that trial's earliest deadline.
    deadlines: Vec<u64>,
    next_comp: Vec<u64>,
}

impl Default for Scratch {
    fn default() -> Self {
        Scratch {
            rnds: Vec::new(),
            thresholds: Vec::new(),
            accrued: Vec::new(),
            coin_draws: Vec::new(),
            completion_time: Vec::new(),
            t: Vec::new(),
            busy: Vec::new(),
            idle: Vec::new(),
            inel: Vec::new(),
            states: Vec::new(),
            live: Vec::new(),
            order: Vec::new(),
            out: Assignment::new(0),
            step_mass: Vec::new(),
            seen: Vec::new(),
            touched: Vec::new(),
            deadlines: Vec::new(),
            next_comp: Vec::new(),
        }
    }
}

/// Aggregate counters of a [`BatchRunner`], cumulative across its `run`
/// calls; the bench harness embeds them per cell (schema
/// `suu-bench/engine-batch/v2`).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchMetrics {
    /// Trials executed through the stationary SoA fast path.
    pub stationary_trials: u64,
    /// Trials executed through the per-trial fallback.
    pub fallback_trials: u64,
    /// Decision-cache probes answered from the cache.
    pub cache_hits: u64,
    /// Probes that built (and inserted) a fresh plan.
    pub cache_misses: u64,
    /// Plans discarded by capacity wipes.
    pub cache_evictions: u64,
    /// Plans currently cached.
    pub cache_entries: u64,
    /// Phase breakdown, when the profiler is enabled.
    pub profile: Option<ProfileReport>,
}

/// A reusable batched executor for one `(instance, policy)` pair: owns
/// the shared eligibility topology, the word-keyed decision cache, the
/// SoA scratch and the phase profiler, all persistent across [`run`]
/// calls so chunked streaming reuses every allocation and stays warm in
/// the decision cache.
///
/// The decision cache is keyed only by remaining set, so a runner must
/// not be reused across *different* stationary policies (asserted by
/// policy name on every stationary run). One-shot callers can use the
/// [`execute_batch`] wrapper.
///
/// [`run`]: BatchRunner::run
pub struct BatchRunner<'i> {
    inst: &'i SuuInstance,
    cfg: ExecConfig,
    topo: EligibilityTopology,
    cache: PlanCache,
    profiler: PhaseProfiler,
    scratch: Scratch,
    events: Option<EventsScratch>,
    policy_name: Option<String>,
    stationary_trials: u64,
    fallback_trials: u64,
}

impl<'i> BatchRunner<'i> {
    /// Runner for `inst` under `cfg`. Profiling defaults to the
    /// `SUU_PROFILE` environment variable ([`ProfileMode::from_env`]).
    pub fn new(inst: &'i SuuInstance, cfg: &ExecConfig) -> Self {
        let n = inst.num_jobs();
        let topo = EligibilityTopology::new(&inst.precedence().to_dag(n));
        BatchRunner {
            inst,
            cfg: *cfg,
            topo,
            cache: PlanCache::new(n.div_ceil(64)),
            profiler: PhaseProfiler::new(PHASE_NAMES, ProfileMode::from_env()),
            scratch: Scratch::default(),
            events: None,
            policy_name: None,
            stationary_trials: 0,
            fallback_trials: 0,
        }
    }

    /// Builder-style profiler override (wins over `SUU_PROFILE`).
    pub fn with_profile(mut self, mode: ProfileMode) -> Self {
        self.profiler = PhaseProfiler::new(PHASE_NAMES, mode);
        self
    }

    /// Builder-style plan-cache capacity override (plans, not bytes).
    /// Reaching the cap wipes the cache between sweeps.
    pub fn with_plan_cap(mut self, cap: usize) -> Self {
        self.cache.cap = cap.max(1);
        self
    }

    /// The instance this runner executes.
    pub fn instance(&self) -> &'i SuuInstance {
        self.inst
    }

    /// Cumulative counters (and profile, if enabled) since construction.
    pub fn metrics(&self) -> BatchMetrics {
        BatchMetrics {
            stationary_trials: self.stationary_trials,
            fallback_trials: self.fallback_trials,
            cache_hits: self.cache.hits,
            cache_misses: self.cache.misses,
            cache_evictions: self.cache.evictions,
            cache_entries: self.cache.plans.len() as u64,
            profile: self.profiler.is_enabled().then(|| self.profiler.report()),
        }
    }

    /// Execute one trial per entry of `trials`, returning outcomes in
    /// trial order.
    ///
    /// Dispatch: stationary policy + [`EngineKind::Events`] takes the SoA
    /// lockstep fast path; anything else falls back to per-trial
    /// execution (bitwise identical by construction). Memory is
    /// `O(B · n)` for a batch of `B` trials — callers stream chunks of a
    /// larger run through repeated `run` calls to keep evaluation memory
    /// independent of the total trial count.
    pub fn run(&mut self, policy: &mut dyn Policy, trials: &[BatchTrial]) -> Vec<ExecOutcome> {
        if trials.is_empty() {
            return Vec::new();
        }
        if policy.is_stationary() && self.cfg.engine == EngineKind::Events {
            match &self.policy_name {
                Some(name) => assert_eq!(
                    name,
                    policy.name(),
                    "BatchRunner reused across different policies: the decision \
                     cache is only valid for the policy it was filled by"
                ),
                None => self.policy_name = Some(policy.name().to_string()),
            }
            self.stationary_trials += trials.len() as u64;
            self.run_stationary(policy, trials)
        } else {
            self.fallback_trials += trials.len() as u64;
            self.run_fallback(policy, trials)
        }
    }

    /// Per-trial fallback: the event engine against one reused scratch,
    /// or the dense oracle.
    fn run_fallback(&mut self, policy: &mut dyn Policy, trials: &[BatchTrial]) -> Vec<ExecOutcome> {
        let inst = self.inst;
        let cfg = self.cfg;
        match cfg.engine {
            EngineKind::Events => {
                let scratch = self.events.get_or_insert_with(|| EventsScratch::new(inst));
                trials
                    .iter()
                    .map(|trial| {
                        if let Some(seed) = trial.policy_seed {
                            policy.reseed(seed);
                        }
                        execute_events_in(inst, policy, &cfg, trial.engine_seed, scratch)
                    })
                    .collect()
            }
            EngineKind::Dense => trials
                .iter()
                .map(|trial| {
                    if let Some(seed) = trial.policy_seed {
                        policy.reseed(seed);
                    }
                    super::execute(inst, policy, &cfg, trial.engine_seed)
                })
                .collect(),
        }
    }

    /// The SoA lockstep fast path. Each sweep advances every live trial
    /// by one decision epoch in four phases — retire, decide/probe,
    /// group-by-plan, sample+advance — and the sampling runs
    /// [`LANES`]-wide per plan group. See the module docs for the layout
    /// and the equality argument.
    // The sampling phase's 0..LANES loops are deliberately indexed — the
    // same unrolled shape as the wide kernels they feed.
    #[allow(clippy::needless_range_loop)]
    fn run_stationary(
        &mut self,
        policy: &mut dyn Policy,
        trials: &[BatchTrial],
    ) -> Vec<ExecOutcome> {
        let inst = self.inst;
        let cfg = self.cfg;
        let topo = &self.topo;
        let cache = &mut self.cache;
        let profiler = &mut self.profiler;
        let s = &mut self.scratch;

        let n = inst.num_jobs();
        let m = inst.num_machines();
        let b_count = trials.len();
        policy.reset();

        // ---- per-run column setup (allocation-free once warm) ----
        profiler.enter(PH_SWEEP);
        s.rnds.clear();
        s.rnds
            .extend(trials.iter().map(|t| JobRandomness::new(t.engine_seed)));
        s.thresholds.clear();
        if cfg.semantics == Semantics::SuuStar {
            for b in 0..b_count {
                for j in 0..n as u32 {
                    s.thresholds.push(s.rnds[b].threshold(j));
                }
            }
        }
        s.accrued.clear();
        s.accrued.resize(b_count * n, 0.0);
        s.coin_draws.clear();
        s.coin_draws.resize(b_count * n, 0);
        s.completion_time.clear();
        s.completion_time.resize(b_count * n, u64::MAX);
        s.t.clear();
        s.t.resize(b_count, 0);
        s.busy.clear();
        s.busy.resize(b_count, 0);
        s.idle.clear();
        s.idle.resize(b_count, 0);
        s.inel.clear();
        s.inel.resize(b_count, 0);
        s.states.truncate(b_count);
        for state in s.states.iter_mut() {
            topo.reset_state(state);
        }
        while s.states.len() < b_count {
            s.states.push(topo.new_state());
        }
        s.step_mass.clear();
        s.step_mass.resize(n, 0.0);
        s.seen.clear();
        s.seen.resize(n, false);
        if s.out.num_machines() != m {
            s.out = Assignment::new(m);
        }
        s.live.clear();
        s.live.extend(0..b_count as u32);

        let mut outcomes: Vec<Option<ExecOutcome>> = (0..b_count).map(|_| None).collect();

        // ---- lockstep sweeps ----
        while !s.live.is_empty() {
            profiler.enter(PH_SWEEP);
            cache.maybe_evict();

            // Phase A: retire finished and capped trials (in place;
            // trial order is preserved).
            let mut w = 0;
            for r in 0..s.live.len() {
                let b = s.live[r] as usize;
                let base = b * n;
                if s.states[b].all_done() {
                    outcomes[b] = Some(ExecOutcome {
                        makespan: s.t[b],
                        completed: true,
                        busy_steps: s.busy[b],
                        idle_steps: s.idle[b],
                        ineligible_assignments: s.inel[b],
                        completion_time: s.completion_time[base..base + n].to_vec(),
                    });
                } else if s.t[b] >= cfg.max_steps {
                    outcomes[b] = Some(ExecOutcome {
                        makespan: cfg.max_steps,
                        completed: false,
                        busy_steps: s.busy[b],
                        idle_steps: s.idle[b],
                        ineligible_assignments: s.inel[b],
                        completion_time: s.completion_time[base..base + n].to_vec(),
                    });
                } else {
                    s.live[w] = s.live[r];
                    w += 1;
                }
            }
            s.live.truncate(w);
            if s.live.is_empty() {
                break;
            }

            // Phase B: one decision-cache probe per live trial; misses
            // decide and build the plan. Probes run in live (trial)
            // order, so the sequence of `decide` calls — and therefore
            // the hit/miss stream — is identical to processing trials
            // one at a time.
            profiler.enter(PH_CACHE);
            s.order.clear();
            for li in 0..s.live.len() {
                let b = s.live[li] as usize;
                let plan_idx = match cache.map.get(s.states[b].remaining().words()).copied() {
                    Some(idx) => {
                        cache.hits += 1;
                        idx
                    }
                    None => {
                        cache.misses += 1;
                        profiler.enter(PH_DECIDE);
                        s.out.clear();
                        let decision = {
                            let view = StateView {
                                time: s.t[b],
                                epoch: s.states[b].epoch(),
                                remaining: s.states[b].remaining(),
                                eligible: s.states[b].eligible(),
                                n,
                                m,
                            };
                            policy.decide(&view, &mut s.out)
                        };
                        // A wake-up request here would make the shared
                        // plan unsound (and silently desync from the
                        // per-trial engines), so treat it as a contract
                        // violation.
                        assert!(
                            decision.next_wakeup.is_none(),
                            "policy {:?} declared is_stationary but requested a wake-up",
                            policy.name()
                        );
                        // Classify machines exactly as the event engine
                        // does.
                        let mut busy_m = 0u64;
                        let mut idle_m = 0u64;
                        let mut inel_m = 0u64;
                        s.touched.clear();
                        for i in 0..m {
                            match s.out.get(i) {
                                None => idle_m += 1,
                                Some(j) => {
                                    let ji = j.index();
                                    debug_assert!(ji < n, "policy assigned out-of-range job");
                                    if !s.states[b].remaining().contains(j.0) {
                                        idle_m += 1;
                                    } else if !s.states[b].eligible().contains(j.0) {
                                        inel_m += 1;
                                    } else {
                                        if !s.seen[ji] {
                                            s.seen[ji] = true;
                                            s.touched.push(j.0);
                                        }
                                        s.step_mass[ji] += inst.ell(MachineId(i as u32), j);
                                        busy_m += 1;
                                    }
                                }
                            }
                        }
                        let run_start = cache.runs.len() as u32;
                        for &j in &s.touched {
                            let ji = j as usize;
                            let mass = s.step_mass[ji];
                            s.step_mass[ji] = 0.0;
                            s.seen[ji] = false;
                            if mass > 0.0 {
                                cache.runs.push(RunJob {
                                    j,
                                    mass,
                                    geom: GeomSegment::new(mass),
                                });
                            }
                        }
                        let idx = cache.plans.len() as u32;
                        cache.plans.push(EpochPlan {
                            busy_m,
                            idle_m,
                            inel_m,
                            run_start,
                            run_len: cache.runs.len() as u32 - run_start,
                        });
                        cache.map.insert(s.states[b].remaining().words(), idx);
                        profiler.enter(PH_CACHE);
                        idx
                    }
                };
                s.order.push((plan_idx, b as u32));
            }

            // Phase C: group the sweep's trials by plan (trial order is
            // preserved within a group — `order` is built in live order
            // and the sort is by (plan, trial)).
            profiler.enter(PH_SWEEP);
            s.order.sort_unstable();

            // Phase D+E per plan group: wide sampling, then per-trial
            // advancement. Trials are independent, so regrouping them
            // across the sweep is invisible in the outcomes.
            let mut g0 = 0;
            while g0 < s.order.len() {
                let plan_idx = s.order[g0].0;
                let mut g1 = g0 + 1;
                while g1 < s.order.len() && s.order[g1].0 == plan_idx {
                    g1 += 1;
                }
                let glen = g1 - g0;
                let plan = cache.plans[plan_idx as usize];
                let runs =
                    &cache.runs[plan.run_start as usize..(plan.run_start + plan.run_len) as usize];

                // ---- sampling: LANES trials of one (job, mass) segment
                // at a time ----
                profiler.enter(PH_SAMPLE);
                s.next_comp.clear();
                s.next_comp.resize(glen, NEVER);
                s.deadlines.clear();
                s.deadlines.resize(runs.len() * glen, 0);
                for (jr, run) in runs.iter().enumerate() {
                    let ji = run.j as usize;
                    let drow = jr * glen;
                    match cfg.semantics {
                        Semantics::SuuStar => {
                            let mut g = 0;
                            while g + LANES <= glen {
                                let mut bases = [0.0f64; LANES];
                                let mut thrs = [0.0f64; LANES];
                                for l in 0..LANES {
                                    let col = s.order[g0 + g + l].1 as usize * n + ji;
                                    bases[l] = s.accrued[col];
                                    thrs[l] = s.thresholds[col];
                                }
                                let mut steps = [0u64; LANES];
                                star_steps_wide(&bases, &thrs, run.mass, &mut steps);
                                for l in 0..LANES {
                                    let gi = g + l;
                                    let b = s.order[g0 + gi].1 as usize;
                                    let dl = s.t[b].saturating_add(steps[l]);
                                    s.deadlines[drow + gi] = dl;
                                    if dl < s.next_comp[gi] {
                                        s.next_comp[gi] = dl;
                                    }
                                }
                                g += LANES;
                            }
                            while g < glen {
                                let b = s.order[g0 + g].1 as usize;
                                let col = b * n + ji;
                                let steps = star_steps(s.accrued[col], s.thresholds[col], run.mass);
                                let dl = s.t[b].saturating_add(steps);
                                s.deadlines[drow + g] = dl;
                                if dl < s.next_comp[g] {
                                    s.next_comp[g] = dl;
                                }
                                g += 1;
                            }
                        }
                        Semantics::Suu => {
                            let mut g = 0;
                            while g + LANES <= glen {
                                let mut us = [0.0f64; LANES];
                                for l in 0..LANES {
                                    let b = s.order[g0 + g + l].1 as usize;
                                    let col = b * n + ji;
                                    us[l] = s.rnds[b].coin(run.j, s.coin_draws[col]);
                                    s.coin_draws[col] += 1;
                                }
                                let mut steps = [0u64; LANES];
                                run.geom.steps_wide(&us, &mut steps);
                                for l in 0..LANES {
                                    let gi = g + l;
                                    let b = s.order[g0 + gi].1 as usize;
                                    let dl = s.t[b].saturating_add(steps[l]);
                                    s.deadlines[drow + gi] = dl;
                                    if dl < s.next_comp[gi] {
                                        s.next_comp[gi] = dl;
                                    }
                                }
                                g += LANES;
                            }
                            while g < glen {
                                let b = s.order[g0 + g].1 as usize;
                                let col = b * n + ji;
                                let u = s.rnds[b].coin(run.j, s.coin_draws[col]);
                                s.coin_draws[col] += 1;
                                let dl = s.t[b].saturating_add(run.geom.steps(u));
                                s.deadlines[drow + g] = dl;
                                if dl < s.next_comp[g] {
                                    s.next_comp[g] = dl;
                                }
                                g += 1;
                            }
                        }
                    }
                }

                // ---- state update: fast-forward each trial of the
                // group to its event (or burn to the step cap) ----
                profiler.enter(PH_UPDATE);
                for gi in 0..glen {
                    let b = s.order[g0 + gi].1 as usize;
                    let base = b * n;
                    let next_completion = s.next_comp[gi];
                    // Stationary policies never wake up, so the next
                    // event is the next completion (or the step cap).
                    if next_completion > cfg.max_steps {
                        let span = cfg.max_steps - s.t[b];
                        s.busy[b] += plan.busy_m * span;
                        s.idle[b] += plan.idle_m * span;
                        s.inel[b] += plan.inel_m * span;
                        s.t[b] = cfg.max_steps;
                        continue; // retired as incomplete on the next sweep
                    }
                    let event_t = next_completion;
                    let span = event_t - s.t[b];
                    s.busy[b] += plan.busy_m * span;
                    s.idle[b] += plan.idle_m * span;
                    s.inel[b] += plan.inel_m * span;
                    for (jr, run) in runs.iter().enumerate() {
                        let ji = run.j as usize;
                        if cfg.semantics == Semantics::SuuStar {
                            s.accrued[base + ji] += span as f64 * run.mass;
                        }
                        if s.deadlines[jr * glen + gi] == event_t {
                            s.completion_time[base + ji] = event_t;
                            s.states[b].complete(topo, run.j);
                        }
                    }
                    s.t[b] = event_t;
                }

                g0 = g1;
            }
        }
        profiler.finish();

        outcomes
            .into_iter()
            .map(|o| o.expect("every trial retired with an outcome"))
            .collect()
    }
}

/// Execute one trial per entry of `trials` with a one-shot
/// [`BatchRunner`], returning outcomes in trial order. Streaming callers
/// that execute many chunks of one cell should hold a runner instead —
/// it keeps the decision cache and all scratch warm across chunks.
pub fn execute_batch(
    inst: &SuuInstance,
    policy: &mut dyn Policy,
    cfg: &ExecConfig,
    trials: &[BatchTrial],
) -> Vec<ExecOutcome> {
    BatchRunner::new(inst, cfg).run(policy, trials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::execute;
    use crate::policy::Decision;
    use suu_core::{workload, JobId, Precedence};

    /// Stationary: machines spread over the eligible set by rank.
    struct Spread;
    impl Policy for Spread {
        fn name(&self) -> &str {
            "spread"
        }
        fn reset(&mut self) {}
        fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
            let eligible: Vec<u32> = view.eligible.iter().collect();
            if !eligible.is_empty() {
                for i in 0..view.m {
                    out.set(i, JobId(eligible[i % eligible.len()]));
                }
            }
            Decision::HOLD
        }
        fn is_stationary(&self) -> bool {
            true
        }
    }

    /// Non-stationary: rotates assignments every step.
    struct Rotate;
    impl Policy for Rotate {
        fn name(&self) -> &str {
            "rotate"
        }
        fn reset(&mut self) {}
        fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
            let eligible: Vec<u32> = view.eligible.iter().collect();
            if !eligible.is_empty() {
                for i in 0..view.m {
                    let idx = (i as u64 + view.time) as usize % eligible.len();
                    out.set(i, JobId(eligible[idx]));
                }
            }
            Decision::step(view)
        }
    }

    fn seeds(count: usize, base: u64) -> Vec<BatchTrial> {
        (0..count)
            .map(|k| BatchTrial {
                engine_seed: crate::evaluate::derive_seed(base, k as u64, 0x45),
                policy_seed: None,
            })
            .collect()
    }

    #[test]
    fn stationary_batch_matches_per_trial_events_bitwise() {
        use rand::SeedableRng;
        let mut grng = rand::rngs::SmallRng::seed_from_u64(3);
        let dag = suu_dag::Dag::from_edges(7, &[(0, 2), (1, 2), (2, 5), (3, 6)]);
        let inst = workload::uniform_unrelated(3, 7, 0.2, 0.95, Precedence::Dag(dag), &mut grng);
        for semantics in [Semantics::Suu, Semantics::SuuStar] {
            let cfg = ExecConfig {
                semantics,
                ..ExecConfig::default()
            };
            let trials = seeds(32, 0xBA7C);
            let batched = execute_batch(&inst, &mut Spread, &cfg, &trials);
            let reference: Vec<ExecOutcome> = trials
                .iter()
                .map(|t| execute(&inst, &mut Spread, &cfg, t.engine_seed))
                .collect();
            assert_eq!(batched, reference, "{semantics:?}");
        }
    }

    #[test]
    fn non_stationary_fallback_matches_per_trial() {
        let inst = workload::homogeneous(2, 5, 0.5, Precedence::Independent);
        let cfg = ExecConfig::default();
        let trials = seeds(16, 0xF0);
        let batched = execute_batch(&inst, &mut Rotate, &cfg, &trials);
        let reference: Vec<ExecOutcome> = trials
            .iter()
            .map(|t| execute(&inst, &mut Rotate, &cfg, t.engine_seed))
            .collect();
        assert_eq!(batched, reference);
    }

    #[test]
    fn step_cap_trials_report_incomplete() {
        // One job making ~1e-8 mass per step: no trial can complete
        // within 50 steps, so every trial must hit the cap with identical
        // accounting to the per-trial engine.
        let inst = workload::homogeneous(2, 1, 0.999_999_99, Precedence::Independent);
        let cfg = ExecConfig {
            max_steps: 50,
            ..ExecConfig::default()
        };
        let trials = seeds(4, 7);
        let batched = execute_batch(&inst, &mut Spread, &cfg, &trials);
        let reference: Vec<ExecOutcome> = trials
            .iter()
            .map(|t| execute(&inst, &mut Spread, &cfg, t.engine_seed))
            .collect();
        assert_eq!(batched, reference);
        for o in &batched {
            assert!(!o.completed);
            assert_eq!(o.makespan, 50);
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let inst = workload::homogeneous(2, 2, 0.5, Precedence::Independent);
        let out = execute_batch(&inst, &mut Spread, &ExecConfig::default(), &[]);
        assert!(out.is_empty());
    }

    #[test]
    fn runner_reuse_across_chunks_matches_one_shot() {
        // Chunked execution through one warm runner (cache + scratch
        // reused) must equal per-chunk one-shot runners bitwise, and the
        // metrics must show the cache carrying over.
        use rand::SeedableRng;
        let mut grng = rand::rngs::SmallRng::seed_from_u64(11);
        let inst = workload::uniform_unrelated(3, 9, 0.3, 0.9, Precedence::Independent, &mut grng);
        let cfg = ExecConfig::default();
        let trials = seeds(24, 0xC0FFEE);
        let mut runner = BatchRunner::new(&inst, &cfg);
        let mut warm: Vec<ExecOutcome> = Vec::new();
        for chunk in trials.chunks(8) {
            warm.extend(runner.run(&mut Spread, chunk));
        }
        let one_shot = execute_batch(&inst, &mut Spread, &cfg, &trials);
        assert_eq!(warm, one_shot);
        let metrics = runner.metrics();
        assert_eq!(metrics.stationary_trials, 24);
        assert_eq!(metrics.fallback_trials, 0);
        assert!(metrics.cache_hits > 0, "warm chunks must hit the cache");
        assert_eq!(metrics.cache_entries, metrics.cache_misses);
        assert_eq!(metrics.cache_evictions, 0);
    }

    #[test]
    fn tiny_plan_cap_evicts_but_stays_bitwise() {
        use rand::SeedableRng;
        let mut grng = rand::rngs::SmallRng::seed_from_u64(5);
        let inst = workload::uniform_unrelated(2, 10, 0.3, 0.9, Precedence::Independent, &mut grng);
        let cfg = ExecConfig::default();
        let trials = seeds(16, 0xE71C);
        let mut runner = BatchRunner::new(&inst, &cfg).with_plan_cap(3);
        let capped = runner.run(&mut Spread, &trials);
        let reference = execute_batch(&inst, &mut Spread, &cfg, &trials);
        assert_eq!(capped, reference);
        let metrics = runner.metrics();
        assert!(
            metrics.cache_evictions > 0,
            "a 3-plan cap must evict on a 10-job instance"
        );
    }

    #[test]
    fn profiler_enabled_produces_phase_breakdown() {
        use suu_core::profile::ProfileMode;
        let inst = workload::homogeneous(2, 6, 0.5, Precedence::Independent);
        let cfg = ExecConfig::default();
        let trials = seeds(12, 0xFACE);
        let mut runner = BatchRunner::new(&inst, &cfg).with_profile(ProfileMode::Exact);
        let profiled = runner.run(&mut Spread, &trials);
        let plain = execute_batch(&inst, &mut Spread, &cfg, &trials);
        assert_eq!(profiled, plain, "profiling must not perturb outcomes");
        let report = runner.metrics().profile.expect("profiler enabled");
        assert!(report.total_nanos() > 0);
        let names: Vec<&str> = report.phases.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec![
                "decide",
                "cache-lookup",
                "sampling",
                "state-update",
                "sweep"
            ]
        );
        let sampling = &report.phases[PH_SAMPLE];
        assert!(sampling.enters > 0, "sampling phase entered");
    }

    #[test]
    #[should_panic(expected = "different policies")]
    fn runner_rejects_policy_switch() {
        let inst = workload::homogeneous(2, 3, 0.5, Precedence::Independent);
        let cfg = ExecConfig::default();
        let trials = seeds(2, 1);
        /// Second stationary policy with a different name.
        struct Idle;
        impl Policy for Idle {
            fn name(&self) -> &str {
                "idle"
            }
            fn reset(&mut self) {}
            fn decide(&mut self, _view: &StateView<'_>, _out: &mut Assignment) -> Decision {
                Decision::HOLD
            }
            fn is_stationary(&self) -> bool {
                true
            }
        }
        let mut runner = BatchRunner::new(&inst, &cfg);
        let _ = runner.run(&mut Spread, &trials);
        let _ = runner.run(&mut Idle, &trials);
    }
}
