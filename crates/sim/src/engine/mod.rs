//! The execution core: decision epochs, two interchangeable engines, and
//! the shared randomness substrate that keeps them bitwise-identical.
//!
//! # Decision epochs
//!
//! A policy's observable state (the remaining/eligible sets of
//! [`crate::StateView`]) changes only when a job completes, so the engine
//! consults the policy only at *decision epochs* — time 0, every
//! completion, and any wake-up time the policy declared — and holds the
//! returned assignment fixed in between. Two engines implement these
//! semantics:
//!
//! * [`events`] (the default) jumps straight from epoch to epoch: for each
//!   running job it computes the exact step at which accrued mass crosses
//!   the hidden threshold (SUU*) or samples a geometric completion time
//!   (SUU), then advances `t` by the minimum. Cost: `O(#events · m)`
//!   rather than `O(makespan · m)`.
//! * [`dense`] steps every unit timestep, consulting the policy each step
//!   — the differential-testing oracle. It exists to *prove* the event
//!   engine right: with the same seed both engines must produce identical
//!   [`ExecOutcome`]s, which `tests/engine_differential.rs` asserts across
//!   every scenario family and both semantics.
//!
//! # Why fast-forwarding is distribution-exact
//!
//! Theorem 10 of the paper shows SUU and SUU* induce identical execution
//! histories. SUU* is trivially skippable: the hidden threshold
//! `−log₂ r_j` is drawn up front and the crossing step of the linear
//! accrual `base + k·µ` has a closed form. SUU draws a fresh coin per
//! step, but per-step Bernoulli(p) failures over a segment of *constant*
//! per-step mass µ form a geometric distribution with `p = 1 − 2^(−µ)`,
//! and the geometric is memoryless — so sampling one inversion per
//! segment (re-sampling at the next epoch if the job survives) is exactly
//! equivalent to flipping every coin.
//!
//! # Shared randomness
//!
//! Both engines draw from counter-based per-job streams derived from the
//! trial seed (see [`JobRandomness`]): SUU* consumes one threshold draw
//! per job, SUU one coin per job per *segment*. Segments are delimited by
//! decision epochs in both engines, so the streams advance in lockstep —
//! the foundation of the bitwise-equality guarantee and of
//! `suu-results/v2` reproducibility.

pub mod batch;
pub mod dense;
pub mod events;
pub mod sampling;

pub(crate) use sampling::{geometric_steps, star_steps, NEVER};

use crate::evaluate::derive_seed;
use crate::policy::Policy;
use suu_core::JobId;

/// Which formulation's randomness to simulate.
///
/// Both are faithful to the paper; Theorem 10 proves they induce the same
/// distribution over execution histories. `SuuStar` is cheaper (one uniform
/// draw per job) and is the default for experiments; `Suu` draws a coin per
/// job-segment and exists to validate the equivalence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semantics {
    /// Per-step Bernoulli failures with probability `∏ q_ij`, realized as
    /// one geometric draw per constant-mass segment (memorylessness makes
    /// the two samplings identical in distribution).
    Suu,
    /// Deferred decisions: hidden threshold `−log₂ r_j` per job, job
    /// completes when accrued log mass crosses it.
    SuuStar,
}

/// Which execution core to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Step-by-step oracle: consults the policy every unit step.
    Dense,
    /// Event-driven fast path: jumps from decision epoch to decision
    /// epoch (the default).
    Events,
}

/// Execution parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Randomness model.
    pub semantics: Semantics,
    /// Execution core ([`EngineKind::Events`] by default; the dense
    /// stepper is retained as the differential-testing oracle).
    pub engine: EngineKind,
    /// Hard step cap: executions that exceed it return
    /// `completed = false`. Guards against non-terminating policies.
    pub max_steps: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            semantics: Semantics::SuuStar,
            engine: EngineKind::Events,
            max_steps: 10_000_000,
        }
    }
}

/// What happened during one execution.
///
/// The three machine-step counters partition every machine-step:
/// `busy_steps + idle_steps + ineligible_assignments == m · makespan`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Steps until the last job completed (valid when `completed`).
    pub makespan: u64,
    /// `false` if `max_steps` was hit first.
    pub completed: bool,
    /// Machine-steps spent on eligible, uncompleted jobs.
    pub busy_steps: u64,
    /// Machine-steps the policy pointed at completed jobs (allowed; the
    /// machine idles) or left idle.
    pub idle_steps: u64,
    /// Machine-steps the policy pointed at *ineligible* jobs (a schedule
    /// bug: the paper forbids this; the engine idles the machine and
    /// counts it here).
    pub ineligible_assignments: u64,
    /// Completion step per job (`u64::MAX` if never completed).
    pub completion_time: Vec<u64>,
}

impl ExecOutcome {
    /// Convenience: completion time of job `j`.
    pub fn completed_at(&self, j: JobId) -> Option<u64> {
        let t = self.completion_time[j.index()];
        (t != u64::MAX).then_some(t)
    }
}

/// Execute `policy` on `inst`, all randomness derived from `seed`.
///
/// One call = one sample of the schedule's makespan distribution.
/// Dispatches on [`ExecConfig::engine`]; both engines are bitwise
/// equivalent for the same seed.
pub fn execute(
    inst: &suu_core::SuuInstance,
    policy: &mut dyn Policy,
    cfg: &ExecConfig,
    seed: u64,
) -> ExecOutcome {
    match cfg.engine {
        EngineKind::Dense => dense::execute_dense(inst, policy, cfg, seed),
        EngineKind::Events => events::execute_events(inst, policy, cfg, seed),
    }
}

/// Domain tag separating threshold draws from everything else.
const THRESHOLD_DOMAIN: u64 = 0x7B;
/// Domain tag for per-segment completion coins.
const COIN_DOMAIN: u64 = 0xC0;

/// Counter-based per-job randomness streams for one trial.
///
/// Stateless by design: draw `k` of job `j` is a pure function of
/// `(trial seed, j, k)`, so the two engines consume identical randomness
/// no matter in which order they interleave jobs, and skipped steps cost
/// nothing.
pub(crate) struct JobRandomness {
    seed: u64,
}

impl JobRandomness {
    pub(crate) fn new(seed: u64) -> Self {
        JobRandomness { seed }
    }

    /// SUU*: the hidden threshold `−log₂ r_j`, with `r_j` uniform in
    /// `(0, 1]` (never 0, so the threshold is finite).
    pub(crate) fn threshold(&self, j: u32) -> f64 {
        let z = derive_seed(self.seed, j as u64, THRESHOLD_DOMAIN);
        let u = ((z >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
        -u.log2()
    }

    /// SUU: the `draw`-th segment coin of job `j`, uniform in `[0, 1)`.
    pub(crate) fn coin(&self, j: u32, draw: u32) -> f64 {
        let z = derive_seed(
            derive_seed(self.seed, j as u64, COIN_DOMAIN),
            draw as u64,
            COIN_DOMAIN,
        );
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Normalize a policy's requested wake-up: values `≤ now` mean "next
/// step" (guaranteeing progress), `None` stays "hold until an event".
pub(crate) fn clamp_wake(wake: Option<u64>, now: u64) -> Option<u64> {
    wake.map(|w| w.max(now + 1))
}

#[cfg(test)]
mod sampler_tests {
    use super::*;

    #[test]
    fn geometric_inversion_matches_survival_function() {
        // P(T > k) = fail^k: check the inversion at the exact quantile
        // boundaries for mass 1 (fail = 1/2).
        assert_eq!(geometric_steps(0.0, 1.0), 1);
        assert_eq!(geometric_steps(0.49, 1.0), 1);
        assert_eq!(geometric_steps(0.51, 1.0), 2);
        assert_eq!(geometric_steps(0.76, 1.0), 3);
        // Infinite mass: always one step. Zero-ish mass: never.
        assert_eq!(geometric_steps(0.5, f64::INFINITY), 1);
        assert_eq!(geometric_steps(0.5, 1e-300), NEVER);
    }

    #[test]
    fn star_steps_is_first_crossing() {
        // base 0, threshold 2.5, mass 1: crosses at k = 3.
        assert_eq!(star_steps(0.0, 2.5, 1.0), 3);
        // Already nearly there.
        assert_eq!(star_steps(2.4, 2.5, 1.0), 1);
        // Exact landing counts as crossed (>=).
        assert_eq!(star_steps(0.0, 3.0, 1.0), 3);
        assert_eq!(star_steps(0.0, 2.0, f64::INFINITY), 1);
        // Consistency with the per-step rule on awkward floats.
        for &(base, thr, mass) in &[
            (0.1, 7.3, 0.3),
            (0.0, 52.9, 1e-3),
            (1.0, 1.0000000001, 0.1),
            (0.0, 1e-9, 5.0),
        ] {
            let k = star_steps(base, thr, mass);
            assert!(base + k as f64 * mass >= thr);
            if k > 1 {
                assert!(base + (k - 1) as f64 * mass < thr);
            }
        }
    }

    #[test]
    fn thresholds_are_finite_and_nonnegative() {
        let rnd = JobRandomness::new(0xABCD);
        for j in 0..100 {
            let th = rnd.threshold(j);
            assert!(th.is_finite() && th >= 0.0);
        }
    }

    #[test]
    fn coins_depend_on_job_and_draw() {
        let rnd = JobRandomness::new(7);
        assert_ne!(rnd.coin(0, 0), rnd.coin(0, 1));
        assert_ne!(rnd.coin(0, 0), rnd.coin(1, 0));
        let again = JobRandomness::new(7);
        assert_eq!(rnd.coin(3, 5), again.coin(3, 5), "streams are pure");
    }

    #[test]
    fn clamp_wake_guards_progress() {
        assert_eq!(clamp_wake(Some(3), 10), Some(11));
        assert_eq!(clamp_wake(Some(12), 10), Some(12));
        assert_eq!(clamp_wake(None, 10), None);
    }
}
