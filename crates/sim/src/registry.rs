//! The unified policy registry: every schedule behind one constructor.
//!
//! The paper's algorithm families target specific precedence shapes
//! (SUU-I for independent jobs, SUU-C for chains, SUU-T for forests), the
//! baselines run anywhere, and exact OPT only fits tiny instances. Before
//! this registry existed, each experiment binary hand-wired the subset of
//! constructors it knew about; comparing a new policy across every
//! scenario meant touching a dozen call sites.
//!
//! Now a schedule is named by a [`PolicySpec`] — `"suu-i-sem"`,
//! `"suu-c(seed=7)"` — and built by a [`PolicyFactory`] looked up in a
//! [`PolicyRegistry`]. Factories declare the most general
//! [`StructureClass`] they support, and the registry refuses (with a
//! precise error) to build a policy on an instance outside its class, so
//! capability mismatches fail loudly at construction rather than as
//! silent precedence violations mid-trial.
//!
//! `suu-sim` owns the interface; `suu-algos` registers the paper's
//! algorithms, the baselines and exact OPT into a
//! `standard_registry()` (it cannot live here: `suu-algos` depends on
//! this crate).

use crate::policy::Policy;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use suu_core::{Precedence, SuuInstance};

/// Precedence structure classes, ordered by generality: every independent
/// instance is a chain set (singletons), every chain set is a forest
/// (paths), every forest is a DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StructureClass {
    /// No precedence constraints.
    Independent,
    /// Disjoint chains.
    Chains,
    /// Directed in-/out-forest.
    Forest,
    /// Arbitrary DAG.
    Dag,
}

impl StructureClass {
    /// The class of an instance's precedence structure.
    pub fn of(prec: &Precedence) -> StructureClass {
        match prec {
            Precedence::Independent => StructureClass::Independent,
            Precedence::Chains(_) => StructureClass::Chains,
            Precedence::Forest(_) => StructureClass::Forest,
            Precedence::Dag(_) => StructureClass::Dag,
        }
    }

    /// Stable lowercase name (used in specs, errors, and JSON reports).
    pub fn name(self) -> &'static str {
        match self {
            StructureClass::Independent => "independent",
            StructureClass::Chains => "chains",
            StructureClass::Forest => "forest",
            StructureClass::Dag => "dag",
        }
    }
}

impl fmt::Display for StructureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A named, parameterized policy specification.
///
/// The textual form is `name` or `name(key=value, key=value)`:
/// `"greedy-lr"`, `"suu-c(seed=99, coarsen=true)"`. Parameters are typed
/// at the factory boundary via [`PolicySpec::u64_param`] and friends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicySpec {
    /// Registry name of the policy family.
    pub name: String,
    /// Family-specific parameters (sorted for stable display).
    pub params: BTreeMap<String, String>,
}

impl PolicySpec {
    /// Spec with no parameters.
    pub fn new(name: impl Into<String>) -> Self {
        PolicySpec {
            name: name.into(),
            params: BTreeMap::new(),
        }
    }

    /// Builder-style parameter.
    pub fn with(mut self, key: impl Into<String>, value: impl fmt::Display) -> Self {
        self.params.insert(key.into(), value.to_string());
        self
    }

    /// Parse `name` or `name(k=v, ...)`.
    pub fn parse(s: &str) -> Result<Self, RegistryError> {
        let s = s.trim();
        let bad = |why: &str| RegistryError::ParseError {
            spec: s.to_string(),
            reason: why.to_string(),
        };
        let Some(open) = s.find('(') else {
            if s.is_empty() {
                return Err(bad("empty spec"));
            }
            return Ok(PolicySpec::new(s));
        };
        if !s.ends_with(')') {
            return Err(bad("missing closing parenthesis"));
        }
        let name = s[..open].trim();
        if name.is_empty() {
            return Err(bad("empty policy name"));
        }
        let mut spec = PolicySpec::new(name);
        let body = &s[open + 1..s.len() - 1];
        for pair in body.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let Some((k, v)) = pair.split_once('=') else {
                return Err(bad("parameter without '='"));
            };
            spec.params
                .insert(k.trim().to_string(), v.trim().to_string());
        }
        Ok(spec)
    }

    /// Typed access: `u64` parameter with a default.
    pub fn u64_param(&self, key: &str, default: u64) -> Result<u64, RegistryError> {
        self.typed_param(key, default, "u64", |v| v.parse().ok())
    }

    /// Typed access: `f64` parameter with a default.
    pub fn f64_param(&self, key: &str, default: f64) -> Result<f64, RegistryError> {
        self.typed_param(key, default, "f64", |v| v.parse().ok())
    }

    /// Typed access: `bool` parameter with a default.
    pub fn bool_param(&self, key: &str, default: bool) -> Result<bool, RegistryError> {
        self.typed_param(key, default, "bool", |v| v.parse().ok())
    }

    fn typed_param<T>(
        &self,
        key: &str,
        default: T,
        expected: &'static str,
        parse: impl Fn(&str) -> Option<T>,
    ) -> Result<T, RegistryError> {
        match self.params.get(key) {
            None => Ok(default),
            Some(v) => parse(v).ok_or_else(|| RegistryError::BadParam {
                policy: self.name.clone(),
                key: key.to_string(),
                value: v.clone(),
                expected,
            }),
        }
    }

    /// Keys this spec carries that are not in `known` — used by factories
    /// to reject typos instead of silently ignoring them.
    pub fn unknown_params(&self, known: &[&str]) -> Vec<String> {
        self.params
            .keys()
            .filter(|k| !known.contains(&k.as_str()))
            .cloned()
            .collect()
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        if !self.params.is_empty() {
            let body: Vec<String> = self
                .params
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            write!(f, "({})", body.join(","))?;
        }
        Ok(())
    }
}

/// Why a registry lookup or build failed.
#[derive(Debug)]
pub enum RegistryError {
    /// No factory under that name.
    UnknownPolicy {
        /// Requested name.
        name: String,
        /// Registered names, for the error message.
        known: Vec<String>,
    },
    /// The instance's precedence class exceeds the factory's capability.
    UnsupportedStructure {
        /// Policy name.
        policy: String,
        /// Instance class.
        class: StructureClass,
        /// Most general class the factory supports.
        capability: StructureClass,
    },
    /// A parameter failed to parse as its declared type.
    BadParam {
        /// Policy name.
        policy: String,
        /// Parameter key.
        key: String,
        /// Offending value.
        value: String,
        /// Expected type name.
        expected: &'static str,
    },
    /// The spec carried parameters the factory does not know.
    UnknownParams {
        /// Policy name.
        policy: String,
        /// The unrecognized keys.
        keys: Vec<String>,
    },
    /// Construction itself failed (LP infeasibility, instance too large…).
    BuildFailed {
        /// Policy name.
        policy: String,
        /// Human-readable cause.
        reason: String,
    },
    /// A textual spec failed to parse.
    ParseError {
        /// The input.
        spec: String,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownPolicy { name, known } => {
                write!(f, "unknown policy {name:?}; registered: {}", known.join(", "))
            }
            RegistryError::UnsupportedStructure {
                policy,
                class,
                capability,
            } => write!(
                f,
                "policy {policy:?} supports precedence up to {capability} but the instance is {class}"
            ),
            RegistryError::BadParam {
                policy,
                key,
                value,
                expected,
            } => write!(f, "policy {policy:?}: parameter {key}={value:?} is not a {expected}"),
            RegistryError::UnknownParams { policy, keys } => {
                write!(f, "policy {policy:?}: unknown parameters {}", keys.join(", "))
            }
            RegistryError::BuildFailed { policy, reason } => {
                write!(f, "policy {policy:?} failed to build: {reason}")
            }
            RegistryError::ParseError { spec, reason } => {
                write!(f, "bad policy spec {spec:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// The one constructor interface every schedule family implements.
pub trait PolicyFactory: Send + Sync {
    /// Registry name (stable; used in specs and reports).
    fn id(&self) -> &str;

    /// One-line description for listings.
    fn description(&self) -> &str;

    /// The most general [`StructureClass`] this family can schedule.
    fn capability(&self) -> StructureClass;

    /// Build an executable policy for the instance.
    ///
    /// The registry has already checked the capability; factories may
    /// still fail on parameters or construction (e.g. LP solve errors).
    fn build(
        &self,
        inst: &Arc<SuuInstance>,
        spec: &PolicySpec,
    ) -> Result<Box<dyn Policy>, RegistryError>;
}

/// A [`PolicyFactory`] assembled from closures — the common case.
pub struct FnPolicyFactory<F> {
    id: String,
    description: String,
    capability: StructureClass,
    build: F,
}

/// Make a factory from an id, description, capability and build closure.
pub fn factory<F>(
    id: impl Into<String>,
    description: impl Into<String>,
    capability: StructureClass,
    build: F,
) -> FnPolicyFactory<F>
where
    F: Fn(&Arc<SuuInstance>, &PolicySpec) -> Result<Box<dyn Policy>, RegistryError> + Send + Sync,
{
    FnPolicyFactory {
        id: id.into(),
        description: description.into(),
        capability,
        build,
    }
}

impl<F> PolicyFactory for FnPolicyFactory<F>
where
    F: Fn(&Arc<SuuInstance>, &PolicySpec) -> Result<Box<dyn Policy>, RegistryError> + Send + Sync,
{
    fn id(&self) -> &str {
        &self.id
    }
    fn description(&self) -> &str {
        &self.description
    }
    fn capability(&self) -> StructureClass {
        self.capability
    }
    fn build(
        &self,
        inst: &Arc<SuuInstance>,
        spec: &PolicySpec,
    ) -> Result<Box<dyn Policy>, RegistryError> {
        (self.build)(inst, spec)
    }
}

/// Name → factory map with capability checking.
#[derive(Default)]
pub struct PolicyRegistry {
    factories: BTreeMap<String, Arc<dyn PolicyFactory>>,
}

impl PolicyRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a factory under its [`PolicyFactory::id`]. Replaces any
    /// previous factory with the same id and returns it.
    pub fn register(
        &mut self,
        factory: impl PolicyFactory + 'static,
    ) -> Option<Arc<dyn PolicyFactory>> {
        self.factories
            .insert(factory.id().to_string(), Arc::new(factory))
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.factories.keys().map(|k| k.as_str()).collect()
    }

    /// Look up a factory.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn PolicyFactory>> {
        self.factories.get(name)
    }

    /// Names of every family able to schedule instances of `class`.
    pub fn supporting(&self, class: StructureClass) -> Vec<&str> {
        self.factories
            .values()
            .filter(|f| f.capability() >= class)
            .map(|f| f.id())
            .collect()
    }

    /// Build a policy from a spec, enforcing the capability declaration.
    pub fn build(
        &self,
        inst: &Arc<SuuInstance>,
        spec: &PolicySpec,
    ) -> Result<Box<dyn Policy>, RegistryError> {
        let factory =
            self.factories
                .get(&spec.name)
                .ok_or_else(|| RegistryError::UnknownPolicy {
                    name: spec.name.clone(),
                    known: self.names().iter().map(|s| s.to_string()).collect(),
                })?;
        let class = StructureClass::of(inst.precedence());
        if class > factory.capability() {
            return Err(RegistryError::UnsupportedStructure {
                policy: spec.name.clone(),
                class,
                capability: factory.capability(),
            });
        }
        factory.build(inst, spec)
    }

    /// Build from the textual spec form (`"suu-c(seed=7)"`).
    pub fn build_named(
        &self,
        inst: &Arc<SuuInstance>,
        spec: &str,
    ) -> Result<Box<dyn Policy>, RegistryError> {
        self.build(inst, &PolicySpec::parse(spec)?)
    }
}

impl fmt::Debug for PolicyRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Assignment, Decision, StateView};
    use suu_core::workload;

    struct Idle;
    impl Policy for Idle {
        fn name(&self) -> &str {
            "idle"
        }
        fn reset(&mut self) {}
        fn decide(&mut self, _view: &StateView<'_>, _out: &mut Assignment) -> Decision {
            Decision::HOLD
        }
    }

    fn idle_factory(cap: StructureClass) -> impl PolicyFactory {
        factory("idle", "does nothing", cap, |_, spec| {
            let _ = spec.u64_param("k", 0)?;
            Ok(Box::new(Idle) as Box<dyn Policy>)
        })
    }

    #[test]
    fn spec_parse_roundtrip() {
        let spec = PolicySpec::parse("suu-c(seed=7, coarsen=true)").unwrap();
        assert_eq!(spec.name, "suu-c");
        assert_eq!(spec.params["seed"], "7");
        assert_eq!(spec.to_string(), "suu-c(coarsen=true,seed=7)");
        assert_eq!(PolicySpec::parse("plain").unwrap().to_string(), "plain");
        assert!(PolicySpec::parse("").is_err());
        assert!(PolicySpec::parse("x(k)").is_err());
        assert!(PolicySpec::parse("x(k=1").is_err());
    }

    #[test]
    fn typed_params_and_defaults() {
        let spec = PolicySpec::new("p").with("seed", 9).with("flag", true);
        assert_eq!(spec.u64_param("seed", 0).unwrap(), 9);
        assert_eq!(spec.u64_param("missing", 3).unwrap(), 3);
        assert!(spec.bool_param("flag", false).unwrap());
        let bad = PolicySpec::new("p").with("seed", "abc");
        assert!(matches!(
            bad.u64_param("seed", 0),
            Err(RegistryError::BadParam { .. })
        ));
        assert_eq!(spec.unknown_params(&["seed", "flag"]), Vec::<String>::new());
        assert_eq!(spec.unknown_params(&["seed"]), vec!["flag".to_string()]);
    }

    #[test]
    fn structure_class_ordering_matches_generality() {
        assert!(StructureClass::Independent < StructureClass::Chains);
        assert!(StructureClass::Chains < StructureClass::Forest);
        assert!(StructureClass::Forest < StructureClass::Dag);
    }

    #[test]
    fn registry_builds_and_enforces_capability() {
        let mut reg = PolicyRegistry::new();
        reg.register(idle_factory(StructureClass::Independent));
        let ind = Arc::new(workload::homogeneous(2, 3, 0.5, Precedence::Independent));
        assert!(reg.build_named(&ind, "idle").is_ok());
        assert!(matches!(
            reg.build_named(&ind, "nope"),
            Err(RegistryError::UnknownPolicy { .. })
        ));

        let dag = suu_dag::Dag::from_edges(3, &[(0, 1)]);
        let chained = Arc::new(workload::homogeneous(2, 3, 0.5, Precedence::Dag(dag)));
        assert!(matches!(
            reg.build_named(&chained, "idle"),
            Err(RegistryError::UnsupportedStructure { .. })
        ));

        let mut reg2 = PolicyRegistry::new();
        reg2.register(idle_factory(StructureClass::Dag));
        assert!(reg2.build_named(&chained, "idle").is_ok());
        assert_eq!(reg2.supporting(StructureClass::Dag), vec!["idle"]);
        assert!(reg.supporting(StructureClass::Chains).is_empty());
    }
}
