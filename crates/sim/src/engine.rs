//! The step-by-step execution loop.

use crate::policy::{Policy, StateView};
use rand::Rng;
use suu_core::{EligibilityTracker, JobId, MachineId, SuuInstance};

/// Which formulation's randomness to simulate.
///
/// Both are faithful to the paper; Theorem 10 proves they induce the same
/// distribution over execution histories. `SuuStar` is cheaper (one uniform
/// draw per job) and is the default for experiments; `Suu` draws a coin per
/// job-step and exists to validate the equivalence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semantics {
    /// Per-step Bernoulli failures with probability `∏ q_ij`.
    Suu,
    /// Deferred decisions: hidden threshold `−log₂ r_j` per job, job
    /// completes when accrued log mass crosses it.
    SuuStar,
}

/// Execution parameters.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Randomness model.
    pub semantics: Semantics,
    /// Hard step cap: executions that exceed it return
    /// `completed = false`. Guards against non-terminating policies.
    pub max_steps: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            semantics: Semantics::SuuStar,
            max_steps: 10_000_000,
        }
    }
}

/// What happened during one execution.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// Steps until the last job completed (valid when `completed`).
    pub makespan: u64,
    /// `false` if `max_steps` was hit first.
    pub completed: bool,
    /// Machine-steps spent on eligible, uncompleted jobs.
    pub busy_steps: u64,
    /// Machine-steps the policy pointed at completed jobs (allowed; the
    /// machine idles) or left idle.
    pub idle_steps: u64,
    /// Machine-steps the policy pointed at *ineligible* jobs (a schedule
    /// bug: the paper forbids this; the engine idles the machine and
    /// counts it here).
    pub ineligible_assignments: u64,
    /// Completion step per job (`u64::MAX` if never completed).
    pub completion_time: Vec<u64>,
}

impl ExecOutcome {
    /// Convenience: completion time of job `j`.
    pub fn completed_at(&self, j: JobId) -> Option<u64> {
        let t = self.completion_time[j.index()];
        (t != u64::MAX).then_some(t)
    }
}

/// Execute `policy` on `inst`, drawing randomness from `rng`.
///
/// One call = one sample of the schedule's makespan distribution.
pub fn execute<R: Rng>(
    inst: &SuuInstance,
    policy: &mut dyn Policy,
    cfg: &ExecConfig,
    rng: &mut R,
) -> ExecOutcome {
    let n = inst.num_jobs();
    let m = inst.num_machines();
    policy.reset();

    let dag = inst.precedence().to_dag(n);
    let mut tracker = EligibilityTracker::new(&dag);

    // SUU*: thresholds −log₂ r_j; SUU: per-step coins (thresholds unused).
    let thresholds: Vec<f64> = match cfg.semantics {
        Semantics::SuuStar => (0..n)
            .map(|_| {
                let r: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                -r.log2()
            })
            .collect(),
        Semantics::Suu => Vec::new(),
    };
    let mut accrued = vec![0.0f64; n];
    let mut completion_time = vec![u64::MAX; n];

    let mut busy_steps = 0u64;
    let mut idle_steps = 0u64;
    let mut ineligible = 0u64;

    // Scratch: per-job mass collected this step (SUU*) or survival
    // probability (SUU), plus the set of jobs touched.
    let mut step_mass = vec![0.0f64; n];
    let mut touched: Vec<u32> = Vec::with_capacity(m);

    let mut t = 0u64;
    while !tracker.all_done() {
        if t >= cfg.max_steps {
            return ExecOutcome {
                makespan: cfg.max_steps,
                completed: false,
                busy_steps,
                idle_steps,
                ineligible_assignments: ineligible,
                completion_time,
            };
        }

        let assignment = {
            let view = StateView {
                time: t,
                remaining: tracker.remaining(),
                eligible: tracker.eligible(),
                n,
                m,
            };
            policy.assign(&view)
        };
        debug_assert_eq!(assignment.len(), m, "policy returned wrong row width");

        touched.clear();
        for (i, slot) in assignment.iter().enumerate() {
            match slot {
                None => idle_steps += 1,
                Some(j) => {
                    let ji = j.index();
                    debug_assert!(ji < n, "policy assigned out-of-range job");
                    if !tracker.remaining().contains(j.0) {
                        // Completed job: machine rests (allowed).
                        idle_steps += 1;
                    } else if !tracker.eligible().contains(j.0) {
                        ineligible += 1;
                        idle_steps += 1;
                    } else {
                        let ell = inst.ell(MachineId(i as u32), *j);
                        if step_mass[ji] == 0.0 {
                            touched.push(j.0);
                        }
                        step_mass[ji] += ell;
                        busy_steps += 1;
                    }
                }
            }
        }

        // Resolve completions for this step.
        for &j in &touched {
            let ji = j as usize;
            let mass = step_mass[ji];
            step_mass[ji] = 0.0;
            if mass <= 0.0 {
                continue; // only q=1 machines worked on it: no progress
            }
            let completes = match cfg.semantics {
                Semantics::Suu => {
                    // Fails with probability ∏ q = 2^(−mass).
                    let fail_prob = (-mass).exp2();
                    rng.random_range(0.0..1.0) >= fail_prob
                }
                Semantics::SuuStar => {
                    accrued[ji] += mass;
                    accrued[ji] >= thresholds[ji]
                }
            };
            if completes {
                completion_time[ji] = t + 1;
                tracker.complete(j);
            }
        }

        t += 1;
    }

    ExecOutcome {
        makespan: t,
        completed: true,
        busy_steps,
        idle_steps,
        ineligible_assignments: ineligible,
        completion_time,
    }
}
