//! Engine and harness tests, including the statistical SUU ≡ SUU* check
//! and the machine-step accounting invariant.

use crate::engine::{execute, EngineKind, ExecConfig, ExecOutcome, Semantics};
use crate::evaluate::{EvalConfig, Evaluator};
use crate::policy::{Assignment, Decision, Policy, StateView};
use crate::stats::{chi_square_critical_001, chi_square_two_sample, histogram_pair, summarize};
use rand::rngs::StdRng;
use rand::SeedableRng;
use suu_core::{workload, JobId, Precedence};
use suu_dag::ChainSet;

/// Every machine works on the lowest-id eligible remaining job plus
/// round-robin spread: machine i takes the (i mod k)-th eligible job.
/// A pure function of the eligible set, so it holds between events.
#[derive(Clone)]
struct SpreadPolicy;

impl Policy for SpreadPolicy {
    fn name(&self) -> &str {
        "spread"
    }
    fn reset(&mut self) {}
    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
        let eligible: Vec<u32> = view.eligible.iter().collect();
        if !eligible.is_empty() {
            for i in 0..view.m {
                out.set(i, JobId(eligible[i % eligible.len()]));
            }
        }
        Decision::HOLD
    }
    fn is_stationary(&self) -> bool {
        true
    }
}

/// All machines gang on the single lowest eligible job.
#[derive(Clone)]
struct GangPolicy;

impl Policy for GangPolicy {
    fn name(&self) -> &str {
        "gang"
    }
    fn reset(&mut self) {}
    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
        out.fill(view.eligible.first().map(JobId));
        Decision::HOLD
    }
    fn is_stationary(&self) -> bool {
        true
    }
}

/// Never does anything. For step-cap tests.
struct IdlePolicy;

impl Policy for IdlePolicy {
    fn name(&self) -> &str {
        "idle"
    }
    fn reset(&mut self) {}
    fn decide(&mut self, _view: &StateView<'_>, _out: &mut Assignment) -> Decision {
        Decision::HOLD
    }
}

/// Deliberately assigns an ineligible job (the chain's last job).
struct CheatingPolicy;

impl Policy for CheatingPolicy {
    fn name(&self) -> &str {
        "cheat"
    }
    fn reset(&mut self) {}
    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
        out.fill(Some(JobId(view.n as u32 - 1)));
        Decision::HOLD
    }
}

fn cfg(semantics: Semantics) -> ExecConfig {
    ExecConfig {
        semantics,
        max_steps: 1_000_000,
        ..ExecConfig::default()
    }
}

fn eval(trials: usize, seed: u64, semantics: Semantics) -> Evaluator {
    Evaluator::new(EvalConfig {
        trials,
        master_seed: seed,
        threads: 2,
        exec: cfg(semantics),
        ..EvalConfig::default()
    })
}

#[test]
fn deterministic_independent_one_step() {
    // q = 0 everywhere, n = m: spread policy finishes everything in 1 step.
    let inst = workload::deterministic(4, 4, Precedence::Independent);
    for engine in [EngineKind::Dense, EngineKind::Events] {
        let out = execute(
            &inst,
            &mut SpreadPolicy,
            &ExecConfig {
                engine,
                ..cfg(Semantics::SuuStar)
            },
            1,
        );
        assert!(out.completed);
        assert_eq!(out.makespan, 1);
        assert_eq!(out.busy_steps, 4);
        assert_eq!(out.ineligible_assignments, 0);
    }
}

#[test]
fn deterministic_chain_takes_n_steps() {
    // Single chain of 5 jobs, q = 0: must take exactly 5 steps.
    let cs = ChainSet::new(5, vec![vec![0, 1, 2, 3, 4]]).unwrap();
    let inst = workload::deterministic(3, 5, Precedence::Chains(cs));
    for semantics in [Semantics::Suu, Semantics::SuuStar] {
        let out = execute(&inst, &mut GangPolicy, &cfg(semantics), 2);
        assert!(out.completed);
        assert_eq!(out.makespan, 5);
        // Completion times are 1..=5 in chain order.
        for j in 0..5 {
            assert_eq!(out.completed_at(JobId(j)), Some(j as u64 + 1));
        }
    }
}

#[test]
fn geometric_single_job_mean_is_two() {
    // One job, one machine, q = 1/2: makespan ~ Geometric(1/2), E = 2.
    let inst = workload::homogeneous(1, 1, 0.5, Precedence::Independent);
    for semantics in [Semantics::Suu, Semantics::SuuStar] {
        let report = eval(4000, 99, semantics).run(&inst, || GangPolicy);
        assert_eq!(report.completion_rate(), 1.0);
        let mean = report.mean_makespan();
        assert!(
            (mean - 2.0).abs() < 0.12,
            "{semantics:?}: mean {mean} not ~2.0"
        );
    }
}

#[test]
fn two_machines_gang_probability_combines() {
    // One job, two machines with q = 1/2 each: combined failure 1/4,
    // E[T] = 1/(3/4) = 4/3.
    let inst = workload::homogeneous(2, 1, 0.5, Precedence::Independent);
    let report = eval(4000, 7, Semantics::Suu).run(&inst, || GangPolicy);
    let mean = report.mean_makespan();
    assert!((mean - 4.0 / 3.0).abs() < 0.08, "mean {mean}");
}

#[test]
fn suu_and_suustar_distributions_match() {
    // Theorem 10: identical makespan distributions under both semantics.
    // 3 jobs in a chain + 1 independent, heterogeneous machines.
    let cs = ChainSet::new(4, vec![vec![0, 1, 2], vec![3]]).unwrap();
    let mut grng = StdRng::seed_from_u64(5);
    let inst = workload::uniform_unrelated(3, 4, 0.3, 0.9, Precedence::Chains(cs), &mut grng);

    let run = |semantics| {
        eval(6000, 1234, semantics)
            .run(&inst, || SpreadPolicy)
            .outcomes
            .into_iter()
            .map(|o| o.makespan)
            .collect::<Vec<u64>>()
    };
    let a = run(Semantics::Suu);
    let b = run(Semantics::SuuStar);
    let (ha, hb) = histogram_pair(&a, &b);
    let (chi2, dof) = chi_square_two_sample(&ha, &hb);
    let crit = chi_square_critical_001(dof);
    assert!(
        chi2 <= crit,
        "distributions differ: chi2 {chi2:.2} > critical {crit:.2} (dof {dof})"
    );
}

#[test]
fn step_cap_reports_incomplete() {
    let inst = workload::homogeneous(1, 1, 0.5, Precedence::Independent);
    for engine in [EngineKind::Dense, EngineKind::Events] {
        let out = execute(
            &inst,
            &mut IdlePolicy,
            &ExecConfig {
                semantics: Semantics::SuuStar,
                engine,
                max_steps: 50,
            },
            3,
        );
        assert!(!out.completed);
        assert_eq!(out.makespan, 50);
        assert_eq!(out.completion_time[0], u64::MAX);
        assert_eq!(out.idle_steps, 50, "{engine:?}");
    }
}

#[test]
fn ineligible_assignments_are_counted_and_harmless() {
    let cs = ChainSet::new(3, vec![vec![0, 1, 2]]).unwrap();
    let inst = workload::deterministic(2, 3, Precedence::Chains(cs));
    for engine in [EngineKind::Dense, EngineKind::Events] {
        let out = execute(
            &inst,
            &mut CheatingPolicy,
            &ExecConfig {
                semantics: Semantics::SuuStar,
                engine,
                max_steps: 10,
            },
            4,
        );
        // Job 2 never becomes eligible because 0 and 1 never run.
        assert!(!out.completed);
        assert_eq!(out.ineligible_assignments, 20, "{engine:?}");
        assert_eq!(out.busy_steps, 0);
    }
}

#[test]
fn machine_step_accounting_partitions_exactly() {
    // busy + idle + ineligible == m · makespan, complete or not, under
    // both engines and both semantics.
    let cs = ChainSet::new(6, vec![vec![0, 1, 2], vec![3, 4, 5]]).unwrap();
    let mut grng = StdRng::seed_from_u64(8);
    let inst = workload::uniform_unrelated(3, 6, 0.3, 0.9, Precedence::Chains(cs), &mut grng);
    for engine in [EngineKind::Dense, EngineKind::Events] {
        for semantics in [Semantics::Suu, Semantics::SuuStar] {
            for (policy, max_steps) in [(0, 1_000_000u64), (1, 25)] {
                let exec = ExecConfig {
                    semantics,
                    engine,
                    max_steps,
                };
                let out = if policy == 0 {
                    execute(&inst, &mut SpreadPolicy, &exec, 11)
                } else {
                    execute(&inst, &mut CheatingPolicy, &exec, 11)
                };
                assert_eq!(
                    out.busy_steps + out.idle_steps + out.ineligible_assignments,
                    3 * out.makespan,
                    "{engine:?}/{semantics:?}/policy{policy}: accounting leak"
                );
            }
        }
    }
}

#[test]
fn dense_and_event_engines_agree_bitwise() {
    // The in-crate miniature of the cross-crate differential suite.
    let cs = ChainSet::new(5, vec![vec![0, 1], vec![2, 3, 4]]).unwrap();
    let mut grng = StdRng::seed_from_u64(21);
    let inst = workload::uniform_unrelated(3, 5, 0.2, 0.95, Precedence::Chains(cs), &mut grng);
    for semantics in [Semantics::Suu, Semantics::SuuStar] {
        for seed in 0..40u64 {
            let run = |engine| -> ExecOutcome {
                execute(
                    &inst,
                    &mut SpreadPolicy,
                    &ExecConfig {
                        semantics,
                        engine,
                        max_steps: 1_000_000,
                    },
                    seed,
                )
            };
            assert_eq!(
                run(EngineKind::Dense),
                run(EngineKind::Events),
                "{semantics:?} seed {seed}"
            );
        }
    }
}

#[test]
fn seeded_runs_are_deterministic() {
    let mut grng = StdRng::seed_from_u64(11);
    let inst = workload::uniform_unrelated(3, 5, 0.2, 0.95, Precedence::Independent, &mut grng);
    let run = || -> Vec<u64> {
        eval(50, 777, Semantics::SuuStar)
            .run(&inst, || SpreadPolicy)
            .outcomes
            .iter()
            .map(|o| o.makespan)
            .collect()
    };
    assert_eq!(run(), run(), "same seeds must give identical outcomes");
}

#[test]
fn single_thread_matches_multi_thread() {
    let inst = workload::homogeneous(2, 3, 0.6, Precedence::Independent);
    let run = |threads: usize| -> Vec<u64> {
        Evaluator::new(EvalConfig {
            trials: 64,
            master_seed: 42,
            threads,
            exec: cfg(Semantics::SuuStar),
            ..EvalConfig::default()
        })
        .run(&inst, || SpreadPolicy)
        .outcomes
        .iter()
        .map(|o| o.makespan)
        .collect()
    };
    assert_eq!(run(1), run(8));
}

#[test]
fn summary_of_makespans() {
    let inst = workload::homogeneous(1, 1, 0.5, Precedence::Independent);
    let report = eval(500, 1, Semantics::SuuStar).run(&inst, || GangPolicy);
    let values: Vec<f64> = report.outcomes.iter().map(|o| o.makespan as f64).collect();
    let s = summarize(&values).expect("nonempty");
    assert_eq!(s.count, 500);
    assert!(s.min >= 1.0);
    assert!(s.mean > 1.0 && s.mean < 3.0);
    assert!(s.p95 >= s.median);
}

#[test]
fn batched_run_matches_per_trial_run_bitwise() {
    // GangPolicy declares stationary, so run_batched goes through the SoA
    // fast path; its outcome vector must equal the per-trial engine's.
    let mut grng = StdRng::seed_from_u64(9);
    let inst = workload::uniform_unrelated(3, 7, 0.25, 0.95, Precedence::Independent, &mut grng);
    for semantics in [Semantics::Suu, Semantics::SuuStar] {
        let evaluator = eval(70, 123, semantics).with_threads(1).with_batch(16);
        let per_trial = evaluator.run(&inst, || GangPolicy);
        let batched = evaluator.run_batched(&inst, || GangPolicy);
        assert_eq!(per_trial.outcomes, batched.outcomes, "{semantics:?}");
    }
}

#[test]
fn run_stats_matches_collected_report_and_any_thread_count() {
    let inst = workload::homogeneous(3, 6, 0.6, Precedence::Independent);
    let evaluator = eval(300, 77, Semantics::SuuStar).with_batch(32);
    let reference = evaluator
        .with_threads(1)
        .run(&inst, || SpreadPolicy)
        .to_stats();
    let ref_summary = reference.summary().expect("nonempty");
    for threads in [1, 2, 5] {
        let stats = evaluator
            .with_threads(threads)
            .run_stats(&inst, || SpreadPolicy);
        assert_eq!(stats.policy, "spread");
        assert_eq!(stats.trials(), 300);
        let s = stats.summary().expect("nonempty");
        // Bitwise: the streaming pipeline folds chunks in trial order at
        // any worker count, so even the order-sensitive statistics agree.
        assert_eq!(s.mean.to_bits(), ref_summary.mean.to_bits(), "{threads}");
        assert_eq!(s.std_dev.to_bits(), ref_summary.std_dev.to_bits());
        assert_eq!(s.median.to_bits(), ref_summary.median.to_bits());
        assert_eq!(s.p95.to_bits(), ref_summary.p95.to_bits());
        assert_eq!(s.min, ref_summary.min);
        assert_eq!(s.max, ref_summary.max);
        assert_eq!(s.count, 300);
        assert!(s.exact_quantiles, "300 <= default exact cap");
    }
}

#[test]
fn run_stats_switches_to_sketch_on_large_samples() {
    let inst = workload::homogeneous(2, 2, 0.5, Precedence::Independent);
    let stats = eval(1500, 5, Semantics::SuuStar)
        .with_batch(128)
        .run_stats(&inst, || GangPolicy);
    let s = stats.summary().expect("nonempty");
    assert_eq!(s.count, 1500);
    assert!(!s.exact_quantiles, "1500 > exact cap: sketch quantiles");
    // Sketch sanity against the exact quantiles of a collected run.
    let exact = eval(1500, 5, Semantics::SuuStar)
        .run(&inst, || GangPolicy)
        .to_stats();
    let exact_mean = exact.summary().unwrap().mean;
    assert_eq!(s.mean.to_bits(), exact_mean.to_bits(), "moments are exact");
    assert!(s.median >= s.min && s.median <= s.max);
    assert!(s.p95 >= s.median - 1.0);
}
