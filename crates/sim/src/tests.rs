//! Engine and harness tests, including the statistical SUU ≡ SUU* check.

use crate::engine::{execute, ExecConfig, Semantics};
use crate::montecarlo::{completion_rate, mean_makespan, run_trials, MonteCarloConfig};
use crate::policy::{Policy, StateView};
use crate::stats::{chi_square_critical_001, chi_square_two_sample, histogram_pair, summarize};
use rand::rngs::StdRng;
use rand::SeedableRng;
use suu_core::{workload, JobId, Precedence};
use suu_dag::ChainSet;

/// Every machine works on the lowest-id eligible remaining job plus
/// round-robin spread: machine i takes the (i mod k)-th eligible job.
#[derive(Clone)]
struct SpreadPolicy;

impl Policy for SpreadPolicy {
    fn name(&self) -> &str {
        "spread"
    }
    fn reset(&mut self) {}
    fn assign(&mut self, view: &StateView<'_>) -> Vec<Option<JobId>> {
        let eligible: Vec<u32> = view.eligible.iter().collect();
        if eligible.is_empty() {
            return vec![None; view.m];
        }
        (0..view.m)
            .map(|i| Some(JobId(eligible[i % eligible.len()])))
            .collect()
    }
}

/// All machines gang on the single lowest eligible job.
#[derive(Clone)]
struct GangPolicy;

impl Policy for GangPolicy {
    fn name(&self) -> &str {
        "gang"
    }
    fn reset(&mut self) {}
    fn assign(&mut self, view: &StateView<'_>) -> Vec<Option<JobId>> {
        match view.eligible.first() {
            Some(j) => vec![Some(JobId(j)); view.m],
            None => vec![None; view.m],
        }
    }
}

/// Never does anything. For step-cap tests.
struct IdlePolicy;

impl Policy for IdlePolicy {
    fn name(&self) -> &str {
        "idle"
    }
    fn reset(&mut self) {}
    fn assign(&mut self, view: &StateView<'_>) -> Vec<Option<JobId>> {
        vec![None; view.m]
    }
}

/// Deliberately assigns an ineligible job (the chain's last job).
struct CheatingPolicy;

impl Policy for CheatingPolicy {
    fn name(&self) -> &str {
        "cheat"
    }
    fn reset(&mut self) {}
    fn assign(&mut self, view: &StateView<'_>) -> Vec<Option<JobId>> {
        vec![Some(JobId(view.n as u32 - 1)); view.m]
    }
}

fn cfg(semantics: Semantics) -> ExecConfig {
    ExecConfig {
        semantics,
        max_steps: 1_000_000,
    }
}

#[test]
fn deterministic_independent_one_step() {
    // q = 0 everywhere, n = m: spread policy finishes everything in 1 step.
    let inst = workload::deterministic(4, 4, Precedence::Independent);
    let mut rng = StdRng::seed_from_u64(1);
    let out = execute(&inst, &mut SpreadPolicy, &cfg(Semantics::SuuStar), &mut rng);
    assert!(out.completed);
    assert_eq!(out.makespan, 1);
    assert_eq!(out.busy_steps, 4);
    assert_eq!(out.ineligible_assignments, 0);
}

#[test]
fn deterministic_chain_takes_n_steps() {
    // Single chain of 5 jobs, q = 0: must take exactly 5 steps.
    let cs = ChainSet::new(5, vec![vec![0, 1, 2, 3, 4]]).unwrap();
    let inst = workload::deterministic(3, 5, Precedence::Chains(cs));
    let mut rng = StdRng::seed_from_u64(2);
    for semantics in [Semantics::Suu, Semantics::SuuStar] {
        let out = execute(&inst, &mut GangPolicy, &cfg(semantics), &mut rng);
        assert!(out.completed);
        assert_eq!(out.makespan, 5);
        // Completion times are 1..=5 in chain order.
        for j in 0..5 {
            assert_eq!(out.completed_at(JobId(j)), Some(j as u64 + 1));
        }
    }
}

#[test]
fn geometric_single_job_mean_is_two() {
    // One job, one machine, q = 1/2: makespan ~ Geometric(1/2), E = 2.
    let inst = workload::homogeneous(1, 1, 0.5, Precedence::Independent);
    for semantics in [Semantics::Suu, Semantics::SuuStar] {
        let mc = MonteCarloConfig {
            trials: 4000,
            base_seed: 99,
            threads: 2,
            exec: cfg(semantics),
        };
        let outcomes = run_trials(&inst, || GangPolicy, &mc);
        assert_eq!(completion_rate(&outcomes), 1.0);
        let mean = mean_makespan(&outcomes);
        assert!(
            (mean - 2.0).abs() < 0.12,
            "{semantics:?}: mean {mean} not ~2.0"
        );
    }
}

#[test]
fn two_machines_gang_probability_combines() {
    // One job, two machines with q = 1/2 each: combined failure 1/4,
    // E[T] = 1/(3/4) = 4/3.
    let inst = workload::homogeneous(2, 1, 0.5, Precedence::Independent);
    let mc = MonteCarloConfig {
        trials: 4000,
        base_seed: 7,
        threads: 2,
        exec: cfg(Semantics::Suu),
    };
    let outcomes = run_trials(&inst, || GangPolicy, &mc);
    let mean = mean_makespan(&outcomes);
    assert!((mean - 4.0 / 3.0).abs() < 0.08, "mean {mean}");
}

#[test]
fn suu_and_suustar_distributions_match() {
    // Theorem 10: identical makespan distributions under both semantics.
    // 3 jobs in a chain + 1 independent, heterogeneous machines.
    let cs = ChainSet::new(4, vec![vec![0, 1, 2], vec![3]]).unwrap();
    let mut grng = StdRng::seed_from_u64(5);
    let inst = workload::uniform_unrelated(3, 4, 0.3, 0.9, Precedence::Chains(cs), &mut grng);

    let trials = 6000;
    let run = |semantics| {
        let mc = MonteCarloConfig {
            trials,
            base_seed: 1234,
            threads: 4,
            exec: cfg(semantics),
        };
        run_trials(&inst, || SpreadPolicy, &mc)
            .into_iter()
            .map(|o| o.makespan)
            .collect::<Vec<u64>>()
    };
    let a = run(Semantics::Suu);
    let b = run(Semantics::SuuStar);
    let (ha, hb) = histogram_pair(&a, &b);
    let (chi2, dof) = chi_square_two_sample(&ha, &hb);
    let crit = chi_square_critical_001(dof);
    assert!(
        chi2 <= crit,
        "distributions differ: chi2 {chi2:.2} > critical {crit:.2} (dof {dof})"
    );
}

#[test]
fn step_cap_reports_incomplete() {
    let inst = workload::homogeneous(1, 1, 0.5, Precedence::Independent);
    let mut rng = StdRng::seed_from_u64(3);
    let out = execute(
        &inst,
        &mut IdlePolicy,
        &ExecConfig {
            semantics: Semantics::SuuStar,
            max_steps: 50,
        },
        &mut rng,
    );
    assert!(!out.completed);
    assert_eq!(out.makespan, 50);
    assert_eq!(out.completion_time[0], u64::MAX);
}

#[test]
fn ineligible_assignments_are_counted_and_harmless() {
    let cs = ChainSet::new(3, vec![vec![0, 1, 2]]).unwrap();
    let inst = workload::deterministic(2, 3, Precedence::Chains(cs));
    let mut rng = StdRng::seed_from_u64(4);
    let out = execute(
        &inst,
        &mut CheatingPolicy,
        &ExecConfig {
            semantics: Semantics::SuuStar,
            max_steps: 10,
        },
        &mut rng,
    );
    // Job 2 never becomes eligible because 0 and 1 never run.
    assert!(!out.completed);
    assert!(out.ineligible_assignments > 0);
    assert_eq!(out.busy_steps, 0);
}

#[test]
fn seeded_runs_are_deterministic() {
    let mut grng = StdRng::seed_from_u64(11);
    let inst = workload::uniform_unrelated(3, 5, 0.2, 0.95, Precedence::Independent, &mut grng);
    let mc = MonteCarloConfig {
        trials: 50,
        base_seed: 777,
        threads: 4,
        exec: cfg(Semantics::SuuStar),
    };
    let a: Vec<u64> = run_trials(&inst, || SpreadPolicy, &mc)
        .iter()
        .map(|o| o.makespan)
        .collect();
    let b: Vec<u64> = run_trials(&inst, || SpreadPolicy, &mc)
        .iter()
        .map(|o| o.makespan)
        .collect();
    assert_eq!(a, b, "same seeds must give identical outcomes");
}

#[test]
fn single_thread_matches_multi_thread() {
    let inst = workload::homogeneous(2, 3, 0.6, Precedence::Independent);
    let base = MonteCarloConfig {
        trials: 64,
        base_seed: 42,
        threads: 1,
        exec: cfg(Semantics::SuuStar),
    };
    let multi = MonteCarloConfig { threads: 8, ..base };
    let a: Vec<u64> = run_trials(&inst, || SpreadPolicy, &base)
        .iter()
        .map(|o| o.makespan)
        .collect();
    let b: Vec<u64> = run_trials(&inst, || SpreadPolicy, &multi)
        .iter()
        .map(|o| o.makespan)
        .collect();
    assert_eq!(a, b);
}

#[test]
fn summary_of_makespans() {
    let inst = workload::homogeneous(1, 1, 0.5, Precedence::Independent);
    let mc = MonteCarloConfig {
        trials: 500,
        base_seed: 1,
        threads: 2,
        exec: cfg(Semantics::SuuStar),
    };
    let outcomes = run_trials(&inst, || GangPolicy, &mc);
    let values: Vec<f64> = outcomes.iter().map(|o| o.makespan as f64).collect();
    let s = summarize(&values);
    assert_eq!(s.count, 500);
    assert!(s.min >= 1.0);
    assert!(s.mean > 1.0 && s.mean < 3.0);
    assert!(s.p95 >= s.median);
}

#[test]
fn busy_and_idle_steps_account_for_all_machine_time() {
    let inst = workload::homogeneous(3, 2, 0.5, Precedence::Independent);
    let mut rng = StdRng::seed_from_u64(12);
    let out = execute(&inst, &mut SpreadPolicy, &cfg(Semantics::SuuStar), &mut rng);
    assert!(out.completed);
    assert_eq!(
        out.busy_steps + out.idle_steps,
        out.makespan * 3,
        "every machine-step is either busy or idle"
    );
}
