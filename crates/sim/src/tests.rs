//! Engine and harness tests, including the statistical SUU ≡ SUU* check
//! and the machine-step accounting invariant.

use crate::engine::{execute, EngineKind, ExecConfig, ExecOutcome, Semantics};
use crate::evaluate::{EvalConfig, Evaluator};
use crate::policy::{Assignment, Decision, Policy, StateView};
use crate::stats::{chi_square_critical_001, chi_square_two_sample, histogram_pair, summarize};
use rand::rngs::StdRng;
use rand::SeedableRng;
use suu_core::{workload, JobId, Precedence};
use suu_dag::ChainSet;

/// Every machine works on the lowest-id eligible remaining job plus
/// round-robin spread: machine i takes the (i mod k)-th eligible job.
/// A pure function of the eligible set, so it holds between events.
#[derive(Clone)]
struct SpreadPolicy;

impl Policy for SpreadPolicy {
    fn name(&self) -> &str {
        "spread"
    }
    fn reset(&mut self) {}
    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
        let eligible: Vec<u32> = view.eligible.iter().collect();
        if !eligible.is_empty() {
            for i in 0..view.m {
                out.set(i, JobId(eligible[i % eligible.len()]));
            }
        }
        Decision::HOLD
    }
}

/// All machines gang on the single lowest eligible job.
#[derive(Clone)]
struct GangPolicy;

impl Policy for GangPolicy {
    fn name(&self) -> &str {
        "gang"
    }
    fn reset(&mut self) {}
    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
        out.fill(view.eligible.first().map(JobId));
        Decision::HOLD
    }
}

/// Never does anything. For step-cap tests.
struct IdlePolicy;

impl Policy for IdlePolicy {
    fn name(&self) -> &str {
        "idle"
    }
    fn reset(&mut self) {}
    fn decide(&mut self, _view: &StateView<'_>, _out: &mut Assignment) -> Decision {
        Decision::HOLD
    }
}

/// Deliberately assigns an ineligible job (the chain's last job).
struct CheatingPolicy;

impl Policy for CheatingPolicy {
    fn name(&self) -> &str {
        "cheat"
    }
    fn reset(&mut self) {}
    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
        out.fill(Some(JobId(view.n as u32 - 1)));
        Decision::HOLD
    }
}

fn cfg(semantics: Semantics) -> ExecConfig {
    ExecConfig {
        semantics,
        max_steps: 1_000_000,
        ..ExecConfig::default()
    }
}

fn eval(trials: usize, seed: u64, semantics: Semantics) -> Evaluator {
    Evaluator::new(EvalConfig {
        trials,
        master_seed: seed,
        threads: 2,
        exec: cfg(semantics),
    })
}

#[test]
fn deterministic_independent_one_step() {
    // q = 0 everywhere, n = m: spread policy finishes everything in 1 step.
    let inst = workload::deterministic(4, 4, Precedence::Independent);
    for engine in [EngineKind::Dense, EngineKind::Events] {
        let out = execute(
            &inst,
            &mut SpreadPolicy,
            &ExecConfig {
                engine,
                ..cfg(Semantics::SuuStar)
            },
            1,
        );
        assert!(out.completed);
        assert_eq!(out.makespan, 1);
        assert_eq!(out.busy_steps, 4);
        assert_eq!(out.ineligible_assignments, 0);
    }
}

#[test]
fn deterministic_chain_takes_n_steps() {
    // Single chain of 5 jobs, q = 0: must take exactly 5 steps.
    let cs = ChainSet::new(5, vec![vec![0, 1, 2, 3, 4]]).unwrap();
    let inst = workload::deterministic(3, 5, Precedence::Chains(cs));
    for semantics in [Semantics::Suu, Semantics::SuuStar] {
        let out = execute(&inst, &mut GangPolicy, &cfg(semantics), 2);
        assert!(out.completed);
        assert_eq!(out.makespan, 5);
        // Completion times are 1..=5 in chain order.
        for j in 0..5 {
            assert_eq!(out.completed_at(JobId(j)), Some(j as u64 + 1));
        }
    }
}

#[test]
fn geometric_single_job_mean_is_two() {
    // One job, one machine, q = 1/2: makespan ~ Geometric(1/2), E = 2.
    let inst = workload::homogeneous(1, 1, 0.5, Precedence::Independent);
    for semantics in [Semantics::Suu, Semantics::SuuStar] {
        let report = eval(4000, 99, semantics).run(&inst, || GangPolicy);
        assert_eq!(report.completion_rate(), 1.0);
        let mean = report.mean_makespan();
        assert!(
            (mean - 2.0).abs() < 0.12,
            "{semantics:?}: mean {mean} not ~2.0"
        );
    }
}

#[test]
fn two_machines_gang_probability_combines() {
    // One job, two machines with q = 1/2 each: combined failure 1/4,
    // E[T] = 1/(3/4) = 4/3.
    let inst = workload::homogeneous(2, 1, 0.5, Precedence::Independent);
    let report = eval(4000, 7, Semantics::Suu).run(&inst, || GangPolicy);
    let mean = report.mean_makespan();
    assert!((mean - 4.0 / 3.0).abs() < 0.08, "mean {mean}");
}

#[test]
fn suu_and_suustar_distributions_match() {
    // Theorem 10: identical makespan distributions under both semantics.
    // 3 jobs in a chain + 1 independent, heterogeneous machines.
    let cs = ChainSet::new(4, vec![vec![0, 1, 2], vec![3]]).unwrap();
    let mut grng = StdRng::seed_from_u64(5);
    let inst = workload::uniform_unrelated(3, 4, 0.3, 0.9, Precedence::Chains(cs), &mut grng);

    let run = |semantics| {
        eval(6000, 1234, semantics)
            .run(&inst, || SpreadPolicy)
            .outcomes
            .into_iter()
            .map(|o| o.makespan)
            .collect::<Vec<u64>>()
    };
    let a = run(Semantics::Suu);
    let b = run(Semantics::SuuStar);
    let (ha, hb) = histogram_pair(&a, &b);
    let (chi2, dof) = chi_square_two_sample(&ha, &hb);
    let crit = chi_square_critical_001(dof);
    assert!(
        chi2 <= crit,
        "distributions differ: chi2 {chi2:.2} > critical {crit:.2} (dof {dof})"
    );
}

#[test]
fn step_cap_reports_incomplete() {
    let inst = workload::homogeneous(1, 1, 0.5, Precedence::Independent);
    for engine in [EngineKind::Dense, EngineKind::Events] {
        let out = execute(
            &inst,
            &mut IdlePolicy,
            &ExecConfig {
                semantics: Semantics::SuuStar,
                engine,
                max_steps: 50,
            },
            3,
        );
        assert!(!out.completed);
        assert_eq!(out.makespan, 50);
        assert_eq!(out.completion_time[0], u64::MAX);
        assert_eq!(out.idle_steps, 50, "{engine:?}");
    }
}

#[test]
fn ineligible_assignments_are_counted_and_harmless() {
    let cs = ChainSet::new(3, vec![vec![0, 1, 2]]).unwrap();
    let inst = workload::deterministic(2, 3, Precedence::Chains(cs));
    for engine in [EngineKind::Dense, EngineKind::Events] {
        let out = execute(
            &inst,
            &mut CheatingPolicy,
            &ExecConfig {
                semantics: Semantics::SuuStar,
                engine,
                max_steps: 10,
            },
            4,
        );
        // Job 2 never becomes eligible because 0 and 1 never run.
        assert!(!out.completed);
        assert_eq!(out.ineligible_assignments, 20, "{engine:?}");
        assert_eq!(out.busy_steps, 0);
    }
}

#[test]
fn machine_step_accounting_partitions_exactly() {
    // busy + idle + ineligible == m · makespan, complete or not, under
    // both engines and both semantics.
    let cs = ChainSet::new(6, vec![vec![0, 1, 2], vec![3, 4, 5]]).unwrap();
    let mut grng = StdRng::seed_from_u64(8);
    let inst = workload::uniform_unrelated(3, 6, 0.3, 0.9, Precedence::Chains(cs), &mut grng);
    for engine in [EngineKind::Dense, EngineKind::Events] {
        for semantics in [Semantics::Suu, Semantics::SuuStar] {
            for (policy, max_steps) in [(0, 1_000_000u64), (1, 25)] {
                let exec = ExecConfig {
                    semantics,
                    engine,
                    max_steps,
                };
                let out = if policy == 0 {
                    execute(&inst, &mut SpreadPolicy, &exec, 11)
                } else {
                    execute(&inst, &mut CheatingPolicy, &exec, 11)
                };
                assert_eq!(
                    out.busy_steps + out.idle_steps + out.ineligible_assignments,
                    3 * out.makespan,
                    "{engine:?}/{semantics:?}/policy{policy}: accounting leak"
                );
            }
        }
    }
}

#[test]
fn dense_and_event_engines_agree_bitwise() {
    // The in-crate miniature of the cross-crate differential suite.
    let cs = ChainSet::new(5, vec![vec![0, 1], vec![2, 3, 4]]).unwrap();
    let mut grng = StdRng::seed_from_u64(21);
    let inst = workload::uniform_unrelated(3, 5, 0.2, 0.95, Precedence::Chains(cs), &mut grng);
    for semantics in [Semantics::Suu, Semantics::SuuStar] {
        for seed in 0..40u64 {
            let run = |engine| -> ExecOutcome {
                execute(
                    &inst,
                    &mut SpreadPolicy,
                    &ExecConfig {
                        semantics,
                        engine,
                        max_steps: 1_000_000,
                    },
                    seed,
                )
            };
            assert_eq!(
                run(EngineKind::Dense),
                run(EngineKind::Events),
                "{semantics:?} seed {seed}"
            );
        }
    }
}

#[test]
fn seeded_runs_are_deterministic() {
    let mut grng = StdRng::seed_from_u64(11);
    let inst = workload::uniform_unrelated(3, 5, 0.2, 0.95, Precedence::Independent, &mut grng);
    let run = || -> Vec<u64> {
        eval(50, 777, Semantics::SuuStar)
            .run(&inst, || SpreadPolicy)
            .outcomes
            .iter()
            .map(|o| o.makespan)
            .collect()
    };
    assert_eq!(run(), run(), "same seeds must give identical outcomes");
}

#[test]
fn single_thread_matches_multi_thread() {
    let inst = workload::homogeneous(2, 3, 0.6, Precedence::Independent);
    let run = |threads: usize| -> Vec<u64> {
        Evaluator::new(EvalConfig {
            trials: 64,
            master_seed: 42,
            threads,
            exec: cfg(Semantics::SuuStar),
        })
        .run(&inst, || SpreadPolicy)
        .outcomes
        .iter()
        .map(|o| o.makespan)
        .collect()
    };
    assert_eq!(run(1), run(8));
}

#[test]
fn summary_of_makespans() {
    let inst = workload::homogeneous(1, 1, 0.5, Precedence::Independent);
    let report = eval(500, 1, Semantics::SuuStar).run(&inst, || GangPolicy);
    let values: Vec<f64> = report.outcomes.iter().map(|o| o.makespan as f64).collect();
    let s = summarize(&values);
    assert_eq!(s.count, 500);
    assert!(s.min >= 1.0);
    assert!(s.mean > 1.0 && s.mean < 3.0);
    assert!(s.p95 >= s.median);
}

#[test]
#[allow(deprecated)]
fn deprecated_monte_carlo_wrappers_still_route_through_evaluator() {
    use crate::montecarlo::{mean_makespan, run_trials, MonteCarloConfig};
    let inst = workload::homogeneous(2, 3, 0.5, Precedence::Independent);
    let mc = MonteCarloConfig {
        trials: 20,
        base_seed: 5,
        threads: 1,
        exec: cfg(Semantics::SuuStar),
    };
    let legacy = run_trials(&inst, || GangPolicy, &mc);
    let modern = Evaluator::new(mc.into()).run(&inst, || GangPolicy).outcomes;
    assert_eq!(legacy, modern);
    assert!(mean_makespan(&legacy) >= 1.0);
}
