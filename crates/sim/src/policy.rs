//! The `Policy` trait: schedules as algorithms, consulted at *decision
//! epochs*.
//!
//! The paper defines a schedule as a function `Σ : (history, t) → (M → J ∪
//! {⊥})`. Policies here are the executable form — but unlike the original
//! per-step `assign` contract, the engine now consults a policy only when
//! something it can observe has changed:
//!
//! * at time 0,
//! * whenever a job completes (the eligible set — the only state a policy
//!   may observe — changes exactly then), and
//! * at a wake-up time the policy itself declared in its previous
//!   [`Decision`].
//!
//! Between decision epochs the returned [`Assignment`] is **held fixed**,
//! which is what lets the event engine jump from event to event instead of
//! simulating every unit step. The contract a policy must uphold is
//! therefore: *had it been consulted at any step between two epochs, it
//! would have returned the same row and an equivalent wake-up*. Policies
//! whose output genuinely varies per step (e.g. a rotating round-robin)
//! declare `next_wakeup = time + 1` and degrade gracefully to dense
//! pacing.
//!
//! `decide` writes into a caller-owned [`Assignment`] buffer (cleared by
//! the engine before each call) instead of allocating a `Vec<Option<JobId>>`
//! per step — the policy API is allocation-free on the hot path.
//!
//! Crucially, a policy never sees the hidden `r_j` draws or accrued
//! masses: schedules must be oblivious to them (Appendix A), and the type
//! system enforces that here.

use suu_core::BitSet;

pub use suu_core::exec::Assignment;

/// What a policy may observe at a decision epoch.
#[derive(Debug)]
pub struct StateView<'a> {
    /// Current timestep (0-based; the assignment returned executes from
    /// this step until the next decision epoch).
    pub time: u64,
    /// Completion events so far ([`suu_core::EligibilityTracker::epoch`]).
    /// Two views with equal epochs see identical remaining/eligible sets,
    /// so policies can key caches off this instead of diffing bitsets.
    pub epoch: u64,
    /// Jobs not yet completed.
    pub remaining: &'a BitSet,
    /// Jobs eligible to run (all predecessors complete, not themselves
    /// complete).
    pub eligible: &'a BitSet,
    /// Number of jobs.
    pub n: usize,
    /// Number of machines.
    pub m: usize,
}

/// What a policy tells the engine beyond the assignment row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Decision {
    /// Absolute time at which the policy wants to be consulted again even
    /// if no job completes first. `None` means *hold*: the assignment
    /// stays valid until the eligible set changes. Values `≤ time` are
    /// clamped to `time + 1` by the engine.
    pub next_wakeup: Option<u64>,
}

impl Decision {
    /// Hold the assignment until the eligible set changes — the right
    /// decision for any policy that is a pure function of the
    /// remaining/eligible sets (gang, greedy matchings, exact OPT).
    pub const HOLD: Decision = Decision { next_wakeup: None };

    /// Wake at an absolute time `t` (or at the next completion, whichever
    /// comes first).
    #[inline]
    pub fn wake_at(t: u64) -> Decision {
        Decision {
            next_wakeup: Some(t),
        }
    }

    /// Legacy per-step pacing: wake at the very next step. Turns the event
    /// engine into a dense stepper for this policy — correct for policies
    /// whose output varies every step, but forfeits fast-forwarding.
    #[inline]
    pub fn step(view: &StateView<'_>) -> Decision {
        Decision {
            next_wakeup: Some(view.time + 1),
        }
    }
}

/// A schedule, in executable form.
///
/// Implementations may keep internal state across epochs (semioblivious
/// rounds, chain pointers, …); [`Policy::reset`] is called once before each
/// execution so a single policy value can be reused across trials. A
/// stateful policy advancing with time must derive progress from
/// `view.time` (the engine may consult it *earlier* than its declared
/// wake-up when a completion intervenes, and — in the dense oracle — at
/// every step).
pub trait Policy: Send {
    /// Human-readable name (used in experiment tables).
    fn name(&self) -> &str;

    /// Re-initialize internal state for a fresh execution.
    fn reset(&mut self);

    /// Re-seed any *internal* randomness (e.g. `SUU-C`'s Theorem-7 start
    /// delays) from a trial-specific seed. Deterministic policies ignore
    /// this. The parallel evaluator calls it before every trial so that a
    /// trial's outcome depends only on the master seed and trial index —
    /// never on which worker thread previously used the policy value.
    fn reseed(&mut self, _seed: u64) {}

    /// Choose a job (or idle) for every machine, writing into `out`
    /// (pre-cleared to all-idle by the engine), and say when to be
    /// consulted next.
    ///
    /// Entries pointing at completed jobs are treated as idle (the paper
    /// allows schedules to assign completed jobs; the machine simply
    /// rests). Entries pointing at ineligible jobs are also idled but
    /// counted as violations in the execution outcome, since the paper
    /// forbids running ineligible jobs.
    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision;

    /// Capability flag: `true` if this schedule is **stationary** — its
    /// `decide` is a pure function of the remaining/eligible sets (no
    /// dependence on `view.time`/`view.epoch`, no internal state evolving
    /// across epochs, no internal randomness) and it always returns
    /// [`Decision::HOLD`].
    ///
    /// The batched trial engine uses this to share one `decide` across
    /// every trial of a batch that observes the same remaining set (one
    /// call at epoch 0 serves the whole batch), which is only sound under
    /// exactly this contract. Declaring it falsely silently breaks the
    /// batched-vs-per-trial bitwise-equality guarantee, so leave the
    /// default `false` unless all three conditions hold.
    fn is_stationary(&self) -> bool {
        false
    }
}

/// Blanket impl so `Box<dyn Policy>` is itself a policy.
impl Policy for Box<dyn Policy> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn reseed(&mut self, seed: u64) {
        (**self).reseed(seed)
    }

    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
        (**self).decide(view, out)
    }

    fn is_stationary(&self) -> bool {
        (**self).is_stationary()
    }
}
