//! The `Policy` trait: schedules as algorithms.
//!
//! The paper defines a schedule as a function `Σ : (history, t) → (M → J ∪
//! {⊥})`. Policies here are the executable form: each step the engine
//! hands the policy a [`StateView`] (time plus the remaining/eligible job
//! sets — i.e. the history summary the paper's schedules may depend on)
//! and receives one job choice per machine.
//!
//! Crucially, a policy never sees the hidden `r_j` draws or accrued
//! masses: schedules must be oblivious to them (Appendix A), and the type
//! system enforces that here.

use suu_core::{BitSet, JobId};

/// What a policy may observe at each step.
#[derive(Debug)]
pub struct StateView<'a> {
    /// Current timestep (0-based; the assignment returned executes during
    /// this step).
    pub time: u64,
    /// Jobs not yet completed.
    pub remaining: &'a BitSet,
    /// Jobs eligible to run (all predecessors complete, not themselves
    /// complete).
    pub eligible: &'a BitSet,
    /// Number of jobs.
    pub n: usize,
    /// Number of machines.
    pub m: usize,
}

/// A schedule, in executable form.
///
/// Implementations may keep internal state across steps (semioblivious
/// rounds, chain pointers, …); [`Policy::reset`] is called once before each
/// execution so a single policy value can be reused across trials.
pub trait Policy: Send {
    /// Human-readable name (used in experiment tables).
    fn name(&self) -> &str;

    /// Re-initialize internal state for a fresh execution.
    fn reset(&mut self);

    /// Re-seed any *internal* randomness (e.g. `SUU-C`'s Theorem-7 start
    /// delays) from a trial-specific seed. Deterministic policies ignore
    /// this. The parallel evaluator calls it before every trial so that a
    /// trial's outcome depends only on the master seed and trial index —
    /// never on which worker thread previously used the policy value.
    fn reseed(&mut self, _seed: u64) {}

    /// Choose a job (or idle) for every machine at this step.
    ///
    /// The returned vector must have length `view.m`. Entries pointing at
    /// completed jobs are treated as idle (the paper allows schedules to
    /// assign completed jobs; the machine simply rests). Entries pointing
    /// at ineligible jobs are also idled but counted as violations in the
    /// execution outcome, since the paper forbids running ineligible jobs.
    fn assign(&mut self, view: &StateView<'_>) -> Vec<Option<JobId>>;
}

/// Blanket impl so `Box<dyn Policy>` is itself a policy.
impl Policy for Box<dyn Policy> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn reseed(&mut self, seed: u64) {
        (**self).reseed(seed)
    }

    fn assign(&mut self, view: &StateView<'_>) -> Vec<Option<JobId>> {
        (**self).assign(view)
    }
}
