//! Streaming statistics: Welford moments, a P²-style quantile sketch, and
//! the [`OutcomeAccumulator`] the evaluation pipeline folds trials into —
//! plus the two-sample chi-square test used by the equivalence checks.
//!
//! The evaluator used to buffer every trial outcome and summarize at the
//! end, so memory grew linearly with the trial count. Everything here is
//! `O(1)` per sample and per accumulator: mean/variance via Welford's
//! update, min/max directly, and median/p95 through the P² marker sketch
//! — with an **exact small-sample fallback**: below
//! [`OutcomeAccumulator::DEFAULT_EXACT_CAP`] samples the accumulator
//! retains the raw values and reports exact interpolated quantiles
//! (bitwise what the old sort-based `summarize` reported), switching to
//! the sketch only when the sample outgrows the cap.

use crate::engine::ExecOutcome;

/// Summary of a sample of makespans (or any non-negative metric).
#[derive(Debug, Clone)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased).
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_err: f64,
    /// 95% CI half-width (normal approximation).
    pub ci95: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
    /// `true` when `median`/`p95` come from the retained exact sample,
    /// `false` when they are P² sketch estimates (sample outgrew the
    /// accumulator's exact cap).
    pub exact_quantiles: bool,
}

/// Summarize a sample, or `None` if it is empty.
///
/// Routed through [`OutcomeAccumulator`]'s exact path (the sample is
/// retained whole, so quantiles are exact regardless of length); the
/// one sort happens here rather than once per repeated call on a stored
/// report.
pub fn summarize(values: &[f64]) -> Option<Summary> {
    let mut acc = OutcomeAccumulator::with_exact_cap(usize::MAX);
    for &v in values {
        acc.push_makespan(v, true, 0);
    }
    acc.summary()
}

/// Welford's online mean/variance, plus min/max.
///
/// One pass, `O(1)` state, numerically stable; the proptests in this
/// module pin it against the exact two-pass computation to `1e-9`.
#[derive(Debug, Clone, Default)]
pub struct Streaming {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Streaming {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.count == 1 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Unbiased sample variance (0 for a single observation).
    pub fn variance(&self) -> Option<f64> {
        match self.count {
            0 => None,
            1 => Some(0.0),
            c => Some(self.m2 / (c - 1) as f64),
        }
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Minimum observation.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// The P² (piecewise-parabolic) streaming quantile estimator of Jain &
/// Chlamtac: five markers tracking `(min, q/2, q, (1+q)/2, max)` heights,
/// adjusted per observation with a parabolic (or linear) interpolation.
/// `O(1)` memory; exact for the first five observations.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates of the tracked quantiles).
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    increment: [f64; 5],
    /// Observations so far (first five buffer into `heights`).
    count: usize,
}

impl P2Quantile {
    /// Estimator for quantile `q ∈ (0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increment: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_by(|a, b| a.partial_cmp(b).expect("no NaN in sample"));
            }
            return;
        }
        self.count += 1;

        // Find the cell k with heights[k] <= x < heights[k+1], updating
        // the extreme markers on the way.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // One of the three middle cells.
            (1..4).find(|&i| x < self.heights[i]).unwrap_or(4) - 1
        };

        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increment[i];
        }

        // Adjust the three interior markers toward their desired
        // positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let below = self.positions[i] - self.positions[i - 1];
            let above = self.positions[i + 1] - self.positions[i];
            if (d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0) {
                let s = d.signum();
                let candidate = self.parabolic(i, s);
                let new_h = if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                    candidate
                } else {
                    self.linear(i, s)
                };
                self.heights[i] = new_h;
                self.positions[i] += s;
            }
        }
    }

    /// Piecewise-parabolic height prediction for marker `i` moved by `s`.
    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + s / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + s) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - s) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    /// Linear fallback when the parabola overshoots a neighbor.
    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = (i as f64 + s) as usize;
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate (`None` when empty). Exact below five
    /// observations (interpolated from the sorted buffer).
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            c if c < 5 => {
                let mut buf = self.heights[..c].to_vec();
                buf.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in sample"));
                Some(quantile_sorted(&buf, self.q))
            }
            _ => Some(self.heights[2]),
        }
    }
}

/// Streaming accumulator over trial outcomes: everything the report layer
/// needs — makespan moments, min/max, median/p95, completion and
/// violation counts — in memory independent of the trial count.
///
/// Trials must be pushed **in trial order**: the P² sketch (unlike the
/// moments) is order-sensitive, and the evaluator's determinism contract
/// (same master seed ⇒ identical statistics at any thread count) holds
/// because its pipeline folds chunks in index order.
#[derive(Debug, Clone)]
pub struct OutcomeAccumulator {
    makespan: Streaming,
    median: P2Quantile,
    p95: P2Quantile,
    /// Raw makespans, retained while `count <= exact_cap` for exact
    /// quantiles; dropped (switching to the sketches) beyond the cap.
    exact: Option<Vec<f64>>,
    exact_cap: usize,
    completed: u64,
    ineligible: u64,
}

impl Default for OutcomeAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl OutcomeAccumulator {
    /// Samples up to which quantiles are computed exactly from the
    /// retained values; beyond it the P² sketches take over. Sized so
    /// that every historical experiment (≤ 500 trials per cell) keeps
    /// bitwise-identical summary statistics.
    pub const DEFAULT_EXACT_CAP: usize = 512;

    /// Accumulator with the default exact-quantile cap.
    pub fn new() -> Self {
        Self::with_exact_cap(Self::DEFAULT_EXACT_CAP)
    }

    /// Accumulator retaining up to `cap` raw samples for exact quantiles
    /// (`usize::MAX` ⇒ always exact, memory proportional to the sample).
    pub fn with_exact_cap(cap: usize) -> Self {
        OutcomeAccumulator {
            makespan: Streaming::new(),
            median: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
            exact: Some(Vec::new()),
            exact_cap: cap,
            completed: 0,
            ineligible: 0,
        }
    }

    /// Fold in one trial outcome.
    pub fn push(&mut self, outcome: &ExecOutcome) {
        self.push_makespan(
            outcome.makespan as f64,
            outcome.completed,
            outcome.ineligible_assignments,
        );
    }

    /// Fold in one trial as raw fields (used by [`summarize`] and tests).
    ///
    /// While the exact sample is retained the sketches are not updated
    /// (their estimates could never be consulted); on outgrowing the cap
    /// the retained values are replayed into the sketches in arrival
    /// order, so the sketch state — and every later estimate — is
    /// identical to having fed them from the start. An always-exact
    /// accumulator ([`summarize`]'s `usize::MAX` cap) never pays for the
    /// sketches at all.
    pub fn push_makespan(&mut self, makespan: f64, completed: bool, ineligible: u64) {
        self.makespan.push(makespan);
        match &mut self.exact {
            Some(exact) if exact.len() < self.exact_cap => exact.push(makespan),
            Some(_) => {
                // Outgrew the cap: sketches take over from here.
                let exact = self.exact.take().expect("checked Some");
                for &v in &exact {
                    self.median.push(v);
                    self.p95.push(v);
                }
                self.median.push(makespan);
                self.p95.push(makespan);
            }
            None => {
                self.median.push(makespan);
                self.p95.push(makespan);
            }
        }
        if completed {
            self.completed += 1;
        }
        self.ineligible += ineligible;
    }

    /// Trials folded in so far.
    pub fn count(&self) -> u64 {
        self.makespan.count()
    }

    /// The makespan moments/extrema (`O(1)` access, no quantile work).
    pub fn makespan(&self) -> &Streaming {
        &self.makespan
    }

    /// Fraction of trials that completed within the step cap (0 when
    /// empty).
    pub fn completion_rate(&self) -> f64 {
        match self.count() {
            0 => 0.0,
            c => self.completed as f64 / c as f64,
        }
    }

    /// `true` when every folded trial completed.
    pub fn all_completed(&self) -> bool {
        self.completed == self.count()
    }

    /// Total machine-steps pointed at ineligible jobs across all trials.
    pub fn total_ineligible(&self) -> u64 {
        self.ineligible
    }

    /// `true` while quantiles are exact (sample within the cap).
    pub fn exact_quantiles(&self) -> bool {
        self.exact.is_some()
    }

    /// Summary of the makespan sample, or `None` if no trial was folded.
    pub fn summary(&self) -> Option<Summary> {
        let count = self.count() as usize;
        if count == 0 {
            return None;
        }
        let std_dev = self.makespan.std_dev().expect("nonempty");
        let std_err = std_dev / (count as f64).sqrt();
        let (median, p95, exact_quantiles) = match &self.exact {
            Some(values) => {
                let mut sorted = values.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in sample"));
                (
                    quantile_sorted(&sorted, 0.5),
                    quantile_sorted(&sorted, 0.95),
                    true,
                )
            }
            None => (
                self.median.estimate().expect("nonempty"),
                self.p95.estimate().expect("nonempty"),
                false,
            ),
        };
        Some(Summary {
            count,
            mean: self.makespan.mean().expect("nonempty"),
            std_dev,
            std_err,
            ci95: 1.96 * std_err,
            min: self.makespan.min().expect("nonempty"),
            median,
            p95,
            max: self.makespan.max().expect("nonempty"),
            exact_quantiles,
        })
    }
}

/// Quantile of an already-sorted sample (linear interpolation).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty() && (0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Chi-square homogeneity statistic for two samples of counts over shared
/// bins, plus its degrees of freedom. Bins where both samples are empty are
/// dropped; remaining bins with tiny expected counts are pooled into their
/// neighbor to keep the approximation sane.
pub fn chi_square_two_sample(a: &[u64], b: &[u64]) -> (f64, usize) {
    assert_eq!(a.len(), b.len(), "bin count mismatch");
    // Pool bins until every pooled bin has a combined count >= 5.
    let mut pooled: Vec<(f64, f64)> = Vec::new();
    let (mut acc_a, mut acc_b) = (0f64, 0f64);
    for (&ca, &cb) in a.iter().zip(b) {
        acc_a += ca as f64;
        acc_b += cb as f64;
        if acc_a + acc_b >= 5.0 {
            pooled.push((acc_a, acc_b));
            acc_a = 0.0;
            acc_b = 0.0;
        }
    }
    if acc_a + acc_b > 0.0 {
        if let Some(last) = pooled.last_mut() {
            last.0 += acc_a;
            last.1 += acc_b;
        } else {
            pooled.push((acc_a, acc_b));
        }
    }
    let total_a: f64 = pooled.iter().map(|p| p.0).sum();
    let total_b: f64 = pooled.iter().map(|p| p.1).sum();
    let total = total_a + total_b;
    if total == 0.0 || pooled.len() < 2 {
        return (0.0, 0);
    }
    let mut chi2 = 0.0;
    for &(ca, cb) in &pooled {
        let row = ca + cb;
        let ea = row * total_a / total;
        let eb = row * total_b / total;
        if ea > 0.0 {
            chi2 += (ca - ea).powi(2) / ea;
        }
        if eb > 0.0 {
            chi2 += (cb - eb).powi(2) / eb;
        }
    }
    (chi2, pooled.len() - 1)
}

/// Conservative chi-square critical value at significance ~0.001 for `dof`
/// degrees of freedom (Wilson–Hilferty approximation). Used by equivalence
/// tests: statistic above this ⇒ samples very likely differ.
pub fn chi_square_critical_001(dof: usize) -> f64 {
    if dof == 0 {
        return 0.0;
    }
    let k = dof as f64;
    // Wilson–Hilferty: chi2_q ≈ k * (1 - 2/(9k) + z_q * sqrt(2/(9k)))^3,
    // z_{0.999} ≈ 3.09.
    let z = 3.09;
    k * (1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt()).powi(3)
}

/// Build histograms over `0..=max` for two u64 samples (shared binning).
pub fn histogram_pair(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let max = a.iter().chain(b).copied().max().unwrap_or(0) as usize;
    let mut ha = vec![0u64; max + 1];
    let mut hb = vec![0u64; max + 1];
    for &v in a {
        ha[v as usize] += 1;
    }
    for &v in b {
        hb[v as usize] += 1;
    }
    (ha, hb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = summarize(&[4.0; 10]).expect("nonempty");
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 4.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
        assert!(s.exact_quantiles);
    }

    #[test]
    fn summary_basic_moments() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]).expect("nonempty");
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn empty_sample_is_none_not_panic() {
        assert!(summarize(&[]).is_none());
        assert!(OutcomeAccumulator::new().summary().is_none());
    }

    /// Exact two-pass reference for the streaming moments.
    fn exact_moments(values: &[f64]) -> (f64, f64, f64, f64) {
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = if values.len() > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (mean, var.sqrt(), min, max)
    }

    fn exact_quantile(values: &[f64], q: f64) -> f64 {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        quantile_sorted(&sorted, q)
    }

    #[test]
    fn accumulator_switches_to_sketch_past_the_cap() {
        let mut acc = OutcomeAccumulator::with_exact_cap(8);
        for i in 0..8 {
            acc.push_makespan(i as f64, true, 0);
        }
        assert!(acc.exact_quantiles());
        assert!(acc.summary().unwrap().exact_quantiles);
        acc.push_makespan(8.0, true, 0);
        assert!(!acc.exact_quantiles());
        let s = acc.summary().unwrap();
        assert!(!s.exact_quantiles);
        // Moments stay exact regardless of the quantile mode.
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 8.0);
    }

    #[test]
    fn accumulator_counts_completion_and_violations() {
        let mut acc = OutcomeAccumulator::new();
        acc.push_makespan(3.0, true, 0);
        acc.push_makespan(9.0, false, 4);
        acc.push_makespan(5.0, true, 1);
        assert_eq!(acc.count(), 3);
        assert!((acc.completion_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!(!acc.all_completed());
        assert_eq!(acc.total_ineligible(), 5);
    }

    #[test]
    fn p2_sketch_tracks_adversarial_shapes() {
        // Sorted ascending, sorted descending, constant, and bimodal
        // inputs: the sketch's median/p95 must stay within a tolerance of
        // the exact quantiles even on these worst cases.
        let n = 4000;
        let ascending: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let descending: Vec<f64> = (0..n).map(|i| (n - i) as f64).collect();
        let constant = vec![13.5; n];
        let bimodal: Vec<f64> = (0..n)
            .map(|i| if i % 10 < 7 { 10.0 } else { 1000.0 })
            .collect();
        for (name, values) in [
            ("ascending", ascending),
            ("descending", descending),
            ("constant", constant),
            ("bimodal", bimodal),
        ] {
            for q in [0.5, 0.95] {
                let mut sketch = P2Quantile::new(q);
                for &v in &values {
                    sketch.push(v);
                }
                let got = sketch.estimate().unwrap();
                let want = exact_quantile(&values, q);
                let spread = exact_quantile(&values, 1.0) - exact_quantile(&values, 0.0);
                let tol = (spread * 0.05).max(1e-9);
                assert!(
                    (got - want).abs() <= tol,
                    "{name} q{q}: sketch {got} vs exact {want} (tol {tol})"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Streaming mean/std/min/max match the exact two-pass batch
        /// computation to 1e-9 (relative to the sample scale).
        #[test]
        fn streaming_moments_match_exact(
            values in proptest::collection::vec(-1.0e6f64..1.0e6, 1..400),
        ) {
            let mut s = Streaming::new();
            for &v in &values {
                s.push(v);
            }
            let (mean, std_dev, min, max) = exact_moments(&values);
            let scale = 1.0 + values.iter().fold(0.0f64, |a, v| a.max(v.abs()));
            prop_assert!((s.mean().unwrap() - mean).abs() <= 1e-9 * scale);
            prop_assert!((s.std_dev().unwrap() - std_dev).abs() <= 1e-9 * scale);
            prop_assert_eq!(s.min().unwrap(), min);
            prop_assert_eq!(s.max().unwrap(), max);
            prop_assert_eq!(s.count(), values.len() as u64);
        }

        /// Within the exact cap the accumulator's summary is bitwise the
        /// sort-based computation (the small-sample fallback).
        #[test]
        fn small_samples_stay_exact(
            values in proptest::collection::vec(0.0f64..1.0e4, 1..64),
        ) {
            let s = summarize(&values).unwrap();
            prop_assert!(s.exact_quantiles);
            prop_assert_eq!(s.median, exact_quantile(&values, 0.5));
            prop_assert_eq!(s.p95, exact_quantile(&values, 0.95));
            prop_assert_eq!(s.min, exact_quantile(&values, 0.0));
            prop_assert_eq!(s.max, exact_quantile(&values, 1.0));
        }

        /// The P² sketch stays within a coarse tolerance of the exact
        /// quantile on random inputs well past the exact cap.
        #[test]
        fn sketch_tracks_random_inputs(
            values in proptest::collection::vec(0.0f64..1000.0, 1000..3000),
        ) {
            let mut sketch = P2Quantile::new(0.5);
            for &v in &values {
                sketch.push(v);
            }
            let got = sketch.estimate().unwrap();
            let want = exact_quantile(&values, 0.5);
            prop_assert!(
                (got - want).abs() <= 50.0,
                "sketch {} vs exact {}", got, want
            );
        }
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted = [0.0, 10.0];
        assert_eq!(quantile_sorted(&sorted, 0.5), 5.0);
        assert_eq!(quantile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    fn chi_square_identical_histograms_is_zero() {
        let h = vec![10, 20, 30, 5];
        let (chi2, _) = chi_square_two_sample(&h, &h);
        assert!(chi2 < 1e-9);
    }

    #[test]
    fn chi_square_detects_blatant_difference() {
        let a = vec![100, 0, 0];
        let b = vec![0, 0, 100];
        let (chi2, dof) = chi_square_two_sample(&a, &b);
        assert!(chi2 > chi_square_critical_001(dof));
    }

    #[test]
    fn chi_square_pools_sparse_bins() {
        let a = vec![3, 2, 1, 0, 50];
        let b = vec![2, 3, 0, 1, 50];
        let (chi2, dof) = chi_square_two_sample(&a, &b);
        assert!(dof >= 1);
        assert!(
            chi2 <= chi_square_critical_001(dof),
            "similar samples accepted"
        );
    }

    #[test]
    fn critical_values_reasonable() {
        // Known chi-square 0.001 critical values: dof=1 ≈ 10.8, dof=10 ≈ 29.6.
        assert!((chi_square_critical_001(1) - 10.8).abs() < 1.5);
        assert!((chi_square_critical_001(10) - 29.6).abs() < 1.5);
    }

    #[test]
    fn histogram_pair_shares_bins() {
        let (ha, hb) = histogram_pair(&[0, 2, 2], &[1]);
        assert_eq!(ha, vec![1, 0, 2]);
        assert_eq!(hb, vec![0, 1, 0]);
    }
}
