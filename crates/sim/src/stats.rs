//! Streaming statistics: Welford moments, a P²-style quantile sketch, and
//! the [`OutcomeAccumulator`] the evaluation pipeline folds trials into —
//! plus the confidence machinery behind adaptive-precision evaluation
//! (Student-t quantiles, [`PairedDelta`], [`Precision`] stopping rules)
//! and the two-sample chi-square test used by the equivalence checks.
//!
//! The evaluator used to buffer every trial outcome and summarize at the
//! end, so memory grew linearly with the trial count. Everything here is
//! `O(1)` per sample and per accumulator: mean/variance via Welford's
//! update, min/max directly, and median/p95 through the P² marker sketch
//! — with an **exact small-sample fallback**: below
//! [`OutcomeAccumulator::DEFAULT_EXACT_CAP`] samples the accumulator
//! retains the raw values and reports exact interpolated quantiles
//! (bitwise what the old sort-based `summarize` reported), switching to
//! the sketch only when the sample outgrows the cap.
//!
//! Confidence intervals use hand-rolled Student-t quantiles
//! ([`student_t_quantile`], via log-gamma + the regularized incomplete
//! beta function): at the small sample sizes adaptive stopping visits
//! first, the z≈1.96 normal approximation understates the interval badly
//! (t₀.₉₇₅ is 12.71 at n=2 and 2.78 at n=5). Accumulators can be
//! **snapshotted** to [`suu_core::json`] ([`OutcomeAccumulator::to_json`])
//! and later resumed or [merged][`OutcomeAccumulator::merge`], which is
//! what makes cells resumable: extending a cell replays the same
//! per-trial values in the same order, so the restored state — moments
//! *and* sketch markers — is bitwise what a fresh longer run produces.

use crate::engine::ExecOutcome;
use suu_core::json::Json;

/// Summary of a sample of makespans (or any non-negative metric).
#[derive(Debug, Clone)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased).
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_err: f64,
    /// 95% CI half-width (Student-t; see [`t_ci95_scale`]).
    pub ci95: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
    /// `true` when `median`/`p95` come from the retained exact sample,
    /// `false` when they are P² sketch estimates (sample outgrew the
    /// accumulator's exact cap).
    pub exact_quantiles: bool,
}

/// Summarize a sample, or `None` if it is empty.
///
/// Routed through [`OutcomeAccumulator`]'s exact path (the sample is
/// retained whole, so quantiles are exact regardless of length); the
/// one sort happens here rather than once per repeated call on a stored
/// report.
pub fn summarize(values: &[f64]) -> Option<Summary> {
    let mut acc = OutcomeAccumulator::with_exact_cap(usize::MAX);
    for &v in values {
        acc.push_makespan(v, true, 0);
    }
    acc.summary()
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
///
/// Accurate to ~15 significant digits for positive arguments; negative
/// non-integer arguments go through the reflection formula. Only the
/// beta-function plumbing below needs it, but it is exported because
/// hand-rolled special functions are scarce in an offline workspace.
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        return (std::f64::consts::PI / (std::f64::consts::PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let z = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9;
    for (i, c) in COEF.iter().enumerate() {
        acc += c / (z + (i + 1) as f64);
    }
    let t = z + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (z + 0.5) * t.ln() - t + acc.ln()
}

/// Continued-fraction core of the incomplete beta function (modified
/// Lentz's method, Numerical Recipes `betacf`).
fn beta_cont_frac(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-30;
    const EPS: f64 = 3e-16;
    let (qab, qap, qam) = (a + b, a + 1.0, a - 1.0);
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=300 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized incomplete beta function `I_x(a, b)`.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta parameters must be positive");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the continued fraction on whichever side converges fast.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cont_frac(a, b, x) / a
    } else {
        1.0 - front * beta_cont_frac(b, a, 1.0 - x) / b
    }
}

/// CDF of Student's t distribution with `df > 0` degrees of freedom.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    let x = df / (df + t * t);
    let tail = 0.5 * reg_inc_beta(0.5 * df, 0.5, x);
    if t >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Quantile (inverse CDF) of Student's t distribution: the `t` with
/// `P(T ≤ t) = p`, for `p ∈ (0, 1)` and `df > 0`.
///
/// Deterministic bisection against [`student_t_cdf`] — a fixed iteration
/// count, no floating-point environment dependence, accurate to ~1e-12.
/// Not a hot path: it is consulted once per stopping check / summary,
/// never per trial.
pub fn student_t_quantile(p: f64, df: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p) && p > 0.0 && p < 1.0,
        "p must be in (0,1)"
    );
    assert!(df > 0.0, "degrees of freedom must be positive");
    if p == 0.5 {
        return 0.0;
    }
    if p < 0.5 {
        return -student_t_quantile(1.0 - p, df);
    }
    // Bracket [0, hi] with cdf(hi) >= p, then bisect.
    let mut hi = 1.0f64;
    while student_t_cdf(hi, df) < p {
        hi *= 2.0;
        if hi > 1e12 {
            break; // p astronomically close to 1; hi is a fine answer
        }
    }
    let mut lo = 0.0f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid == lo || mid == hi {
            break; // bisection exhausted f64 resolution
        }
        if student_t_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The 95% CI half-width scale for a sample of `count` observations:
/// `t₀.₉₇₅(count − 1)`, the two-sided Student-t critical value.
///
/// `ci95 = t_ci95_scale(n) · std_err`. For `count < 2` the interval is
/// undefined; `0.0` is returned so a single observation reports a zero
/// half-width (its `std_err` is zero anyway), matching the old normal-
/// approximation behavior at the degenerate size.
pub fn t_ci95_scale(count: usize) -> f64 {
    if count < 2 {
        return 0.0;
    }
    student_t_quantile(0.975, (count - 1) as f64)
}

/// When a cell stops growing under adaptive precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A fixed trial budget was configured and spent.
    FixedBudget,
    /// The target CI half-width was reached.
    CiReached,
    /// The trial ceiling was hit before the target half-width.
    MaxTrials,
}

impl StopReason {
    /// Stable wire name (the `stop_reason` field of `suu-results/v2`).
    pub fn as_str(&self) -> &'static str {
        match self {
            StopReason::FixedBudget => "fixed-budget",
            StopReason::CiReached => "ci-reached",
            StopReason::MaxTrials => "max-trials",
        }
    }
}

/// How many trials a cell gets: a fixed budget, or run-until-converged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Precision {
    /// Exactly `n` trials, unconditionally (the pre-adaptive behavior).
    FixedTrials(usize),
    /// Grow the sample until the 95% CI half-width of the mean drops to
    /// the target, subject to trial bounds.
    TargetCi {
        /// Target half-width — absolute, or a fraction of `|mean|` when
        /// `relative` is set.
        half_width: f64,
        /// Interpret `half_width` relative to the current mean estimate.
        relative: bool,
        /// Never stop on the CI rule below this many trials (variance
        /// estimates are too noisy to trust at tiny `n`).
        min_trials: usize,
        /// Hard ceiling; reaching it stops with [`StopReason::MaxTrials`].
        max_trials: usize,
    },
}

impl Precision {
    /// The most trials this rule can ever spend.
    pub fn max_trials(&self) -> usize {
        match self {
            Precision::FixedTrials(n) => *n,
            Precision::TargetCi { max_trials, .. } => *max_trials,
        }
    }

    /// The fewest trials before a stopping check may fire.
    pub fn min_trials(&self) -> usize {
        match self {
            Precision::FixedTrials(n) => *n,
            Precision::TargetCi {
                min_trials,
                max_trials,
                ..
            } => (*min_trials).max(2).min(*max_trials),
        }
    }

    /// Stopping check for a sample of `count` observations with the given
    /// mean and 95% CI half-width. `None` means: keep sampling.
    pub fn check(&self, count: usize, mean: f64, ci95: f64) -> Option<StopReason> {
        match self {
            Precision::FixedTrials(n) => (count >= *n).then_some(StopReason::FixedBudget),
            Precision::TargetCi {
                half_width,
                relative,
                max_trials,
                ..
            } => {
                let goal = if *relative {
                    half_width * mean.abs()
                } else {
                    *half_width
                };
                if count >= self.min_trials() && ci95 <= goal {
                    Some(StopReason::CiReached)
                } else if count >= *max_trials {
                    Some(StopReason::MaxTrials)
                } else {
                    None
                }
            }
        }
    }
}

/// Welford accumulator over **per-trial differences** `a − b` of two
/// policies executed on common random numbers (shared trial seeds).
///
/// Under CRN the per-trial difference removes the within-trial noise the
/// two policies share, so the variance of the *difference* — usually far
/// smaller than either marginal variance — drives the comparison budget.
/// Trials must be pushed in trial order with `a` and `b` from the same
/// trial seed.
#[derive(Debug, Clone, Default)]
pub struct PairedDelta {
    delta: Streaming,
}

impl PairedDelta {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one paired trial: metric of policy A and of policy B under
    /// the same trial seed.
    pub fn push(&mut self, a: f64, b: f64) {
        self.delta.push(a - b);
    }

    /// Paired trials folded in.
    pub fn count(&self) -> u64 {
        self.delta.count()
    }

    /// Mean of `a − b` (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        self.delta.mean()
    }

    /// Standard error of the mean difference.
    pub fn std_err(&self) -> Option<f64> {
        let n = self.delta.count();
        self.delta.std_dev().map(|sd| sd / (n as f64).sqrt())
    }

    /// 95% CI half-width of the mean difference (Student-t).
    pub fn ci95(&self) -> Option<f64> {
        self.std_err()
            .map(|se| t_ci95_scale(self.delta.count() as usize) * se)
    }

    /// `true` when zero lies outside the 95% CI of the mean difference —
    /// the policies are statistically distinguishable at this sample.
    /// `None` when fewer than two pairs were folded.
    pub fn significant(&self) -> Option<bool> {
        if self.delta.count() < 2 {
            return None;
        }
        let mean = self.mean().expect("nonempty");
        let ci = self.ci95().expect("nonempty");
        Some(mean.abs() > ci)
    }

    /// The underlying difference moments.
    pub fn deltas(&self) -> &Streaming {
        &self.delta
    }

    /// Snapshot to JSON (see [`OutcomeAccumulator::to_json`] for the
    /// round-trip contract).
    pub fn to_json(&self) -> Json {
        Json::obj().field("delta", self.delta.to_json())
    }

    /// Restore a snapshot produced by [`PairedDelta::to_json`].
    pub fn from_json(json: &Json) -> Result<Self, String> {
        Ok(PairedDelta {
            delta: Streaming::from_json(
                json.get("delta").ok_or("paired snapshot missing 'delta'")?,
            )?,
        })
    }
}

/// Welford's online mean/variance, plus min/max.
///
/// One pass, `O(1)` state, numerically stable; the proptests in this
/// module pin it against the exact two-pass computation to `1e-9`.
#[derive(Debug, Clone, Default)]
pub struct Streaming {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Streaming {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.count == 1 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Unbiased sample variance (0 for a single observation).
    pub fn variance(&self) -> Option<f64> {
        match self.count {
            0 => None,
            1 => Some(0.0),
            c => Some(self.m2 / (c - 1) as f64),
        }
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Minimum observation.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Snapshot the raw Welford state to JSON. Floats are written in
    /// Rust's shortest round-trip form, so [`Streaming::from_json`]
    /// restores them **bitwise** (all state here is finite by
    /// construction — samples are makespans).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("count", self.count)
            .field("mean", self.mean)
            .field("m2", self.m2)
            .field("min", self.min)
            .field("max", self.max)
    }

    /// Restore a snapshot produced by [`Streaming::to_json`].
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let field = |key: &str| -> Result<f64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("streaming snapshot missing numeric '{key}'"))
        };
        Ok(Streaming {
            count: json
                .get("count")
                .and_then(Json::as_u64)
                .ok_or("streaming snapshot missing 'count'")?,
            mean: field("mean")?,
            m2: field("m2")?,
            min: field("min")?,
            max: field("max")?,
        })
    }
}

/// The P² (piecewise-parabolic) streaming quantile estimator of Jain &
/// Chlamtac: five markers tracking `(min, q/2, q, (1+q)/2, max)` heights,
/// adjusted per observation with a parabolic (or linear) interpolation.
/// `O(1)` memory; exact for the first five observations.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates of the tracked quantiles).
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    increment: [f64; 5],
    /// Observations so far (first five buffer into `heights`).
    count: usize,
}

impl P2Quantile {
    /// Estimator for quantile `q ∈ (0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increment: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights
                    .sort_by(|a, b| a.partial_cmp(b).expect("no NaN in sample"));
            }
            return;
        }
        self.count += 1;

        // Find the cell k with heights[k] <= x < heights[k+1], updating
        // the extreme markers on the way.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // One of the three middle cells.
            (1..4).find(|&i| x < self.heights[i]).unwrap_or(4) - 1
        };

        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increment[i];
        }

        // Adjust the three interior markers toward their desired
        // positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let below = self.positions[i] - self.positions[i - 1];
            let above = self.positions[i + 1] - self.positions[i];
            if (d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0) {
                let s = d.signum();
                let candidate = self.parabolic(i, s);
                let new_h = if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                    candidate
                } else {
                    self.linear(i, s)
                };
                self.heights[i] = new_h;
                self.positions[i] += s;
            }
        }
    }

    /// Piecewise-parabolic height prediction for marker `i` moved by `s`.
    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + s / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + s) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - s) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    /// Linear fallback when the parabola overshoots a neighbor.
    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = (i as f64 + s) as usize;
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Snapshot the full marker state to JSON (bitwise round-trip; see
    /// [`Streaming::to_json`]).
    pub fn to_json(&self) -> Json {
        let arr = |v: &[f64; 5]| Json::Arr(v.iter().map(|&x| Json::Num(x)).collect());
        Json::obj()
            .field("q", self.q)
            .field("count", self.count as u64)
            .field("heights", arr(&self.heights))
            .field("positions", arr(&self.positions))
            .field("desired", arr(&self.desired))
    }

    /// Restore a snapshot produced by [`P2Quantile::to_json`]. The
    /// per-observation increments are a pure function of `q` and are
    /// rebuilt rather than stored.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let q = json
            .get("q")
            .and_then(Json::as_f64)
            .ok_or("sketch snapshot missing 'q'")?;
        let count = json
            .get("count")
            .and_then(Json::as_u64)
            .ok_or("sketch snapshot missing 'count'")? as usize;
        let arr = |key: &str| -> Result<[f64; 5], String> {
            let items = json
                .get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("sketch snapshot missing array '{key}'"))?;
            if items.len() != 5 {
                return Err(format!("sketch '{key}' must have 5 entries"));
            }
            let mut out = [0.0; 5];
            for (slot, item) in out.iter_mut().zip(items) {
                *slot = item
                    .as_f64()
                    .ok_or_else(|| format!("non-numeric entry in sketch '{key}'"))?;
            }
            Ok(out)
        };
        let mut sketch = P2Quantile::new(q);
        sketch.count = count;
        sketch.heights = arr("heights")?;
        sketch.positions = arr("positions")?;
        sketch.desired = arr("desired")?;
        Ok(sketch)
    }

    /// Current estimate (`None` when empty). Exact below five
    /// observations (interpolated from the sorted buffer).
    pub fn estimate(&self) -> Option<f64> {
        match self.count {
            0 => None,
            c if c < 5 => {
                let mut buf = self.heights[..c].to_vec();
                buf.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in sample"));
                Some(quantile_sorted(&buf, self.q))
            }
            _ => Some(self.heights[2]),
        }
    }
}

/// Why [`OutcomeAccumulator::merge`] refused to fold a right-hand side.
///
/// Typed (rather than a bare message) so orchestration layers can branch:
/// a sketch-collapsed cell is not corrupt, it has simply outlived the
/// merge contract and must be grown through the replay-safe extend path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The right-hand accumulator outgrew its exact cap and collapsed to
    /// P² sketch markers; the original push sequence is gone, so no
    /// bitwise-faithful merge exists. Carries the RHS sample count.
    SketchCollapsed {
        /// Number of samples the collapsed accumulator has folded.
        samples: u64,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::SketchCollapsed { samples } => write!(
                f,
                "merge requires the right-hand accumulator to retain its exact \
                 sample; it collapsed to quantile sketches at {samples} samples \
                 (grow it through the extend/replay path instead)"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Streaming accumulator over trial outcomes: everything the report layer
/// needs — makespan moments, min/max, median/p95, completion and
/// violation counts — in memory independent of the trial count.
///
/// Trials must be pushed **in trial order**: the P² sketch (unlike the
/// moments) is order-sensitive, and the evaluator's determinism contract
/// (same master seed ⇒ identical statistics at any thread count) holds
/// because its pipeline folds chunks in index order.
#[derive(Debug, Clone)]
pub struct OutcomeAccumulator {
    makespan: Streaming,
    median: P2Quantile,
    p95: P2Quantile,
    /// Raw makespans, retained while `count <= exact_cap` for exact
    /// quantiles; dropped (switching to the sketches) beyond the cap.
    exact: Option<Vec<f64>>,
    exact_cap: usize,
    completed: u64,
    ineligible: u64,
}

impl Default for OutcomeAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

impl OutcomeAccumulator {
    /// Samples up to which quantiles are computed exactly from the
    /// retained values; beyond it the P² sketches take over. Sized so
    /// that every historical experiment (≤ 500 trials per cell) keeps
    /// bitwise-identical summary statistics.
    pub const DEFAULT_EXACT_CAP: usize = 512;

    /// Accumulator with the default exact-quantile cap.
    pub fn new() -> Self {
        Self::with_exact_cap(Self::DEFAULT_EXACT_CAP)
    }

    /// Accumulator retaining up to `cap` raw samples for exact quantiles
    /// (`usize::MAX` ⇒ always exact, memory proportional to the sample).
    pub fn with_exact_cap(cap: usize) -> Self {
        OutcomeAccumulator {
            makespan: Streaming::new(),
            median: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
            exact: Some(Vec::new()),
            exact_cap: cap,
            completed: 0,
            ineligible: 0,
        }
    }

    /// Fold in one trial outcome.
    pub fn push(&mut self, outcome: &ExecOutcome) {
        self.push_makespan(
            outcome.makespan as f64,
            outcome.completed,
            outcome.ineligible_assignments,
        );
    }

    /// Fold in one trial as raw fields (used by [`summarize`] and tests).
    ///
    /// While the exact sample is retained the sketches are not updated
    /// (their estimates could never be consulted); on outgrowing the cap
    /// the retained values are replayed into the sketches in arrival
    /// order, so the sketch state — and every later estimate — is
    /// identical to having fed them from the start. An always-exact
    /// accumulator ([`summarize`]'s `usize::MAX` cap) never pays for the
    /// sketches at all.
    pub fn push_makespan(&mut self, makespan: f64, completed: bool, ineligible: u64) {
        self.fold_value(makespan);
        if completed {
            self.completed += 1;
        }
        self.ineligible += ineligible;
    }

    /// The makespan half of a push: moments plus the exact-sample /
    /// sketch bookkeeping. Shared by [`OutcomeAccumulator::push_makespan`]
    /// and [`OutcomeAccumulator::merge`], so a merged value goes through
    /// exactly the state transitions a directly-pushed one does.
    fn fold_value(&mut self, makespan: f64) {
        self.makespan.push(makespan);
        match &mut self.exact {
            Some(exact) if exact.len() < self.exact_cap => exact.push(makespan),
            Some(_) => {
                // Outgrew the cap: sketches take over from here.
                let exact = self.exact.take().expect("checked Some");
                for &v in &exact {
                    self.median.push(v);
                    self.p95.push(v);
                }
                self.median.push(makespan);
                self.p95.push(makespan);
            }
            None => {
                self.median.push(makespan);
                self.p95.push(makespan);
            }
        }
    }

    /// Fold another accumulator's trials into this one, **in the order
    /// they were pushed there** — bitwise what pushing them here directly
    /// would have produced (moments, exact sample, sketch markers, and
    /// the cap-crossing replay all reuse the single-push code path).
    ///
    /// Only works while `other` still retains its exact sample (its
    /// count is within its cap): once values are collapsed into sketch
    /// markers the original sequence is gone and no bitwise-faithful
    /// merge exists — that case is the typed
    /// [`MergeError::SketchCollapsed`] so callers can branch on it
    /// (the sweep orchestrator routes collapsed cells through the
    /// replay-safe `resume_adaptive`/`extend_stats` path instead).
    /// Callers doing distributed accumulation should give shard
    /// accumulators a cap at least their shard size.
    pub fn merge(&mut self, other: &OutcomeAccumulator) -> Result<(), MergeError> {
        let values = other.exact.as_ref().ok_or(MergeError::SketchCollapsed {
            samples: other.makespan.count(),
        })?;
        for &v in values {
            self.fold_value(v);
        }
        self.completed += other.completed;
        self.ineligible += other.ineligible;
        Ok(())
    }

    /// Snapshot schema identifier stamped on [`OutcomeAccumulator::to_json`].
    pub const SNAPSHOT_SCHEMA: &'static str = suu_core::schemas::SIM_ACCUMULATOR_V1;

    /// Serialize the complete accumulator state to JSON.
    ///
    /// Floats round-trip bitwise (shortest-representation formatting), so
    /// [`OutcomeAccumulator::from_json`] restores an accumulator that is
    /// indistinguishable from the original: continuing to push the same
    /// values yields identical moments, quantile-sketch markers, and
    /// summaries. This is the persistence format behind resumable cells.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj()
            .field("schema", Self::SNAPSHOT_SCHEMA)
            .field("makespan", self.makespan.to_json())
            .field(
                "exact_cap",
                if self.exact_cap == usize::MAX {
                    Json::Null // "unbounded"; usize::MAX is not portable
                } else {
                    Json::UInt(self.exact_cap as u64)
                },
            )
            .field("completed", self.completed)
            .field("ineligible", self.ineligible);
        match &self.exact {
            Some(values) => {
                // Sketches are untouched while the exact sample is
                // retained, so the values alone reconstruct everything.
                doc = doc.field(
                    "exact",
                    Json::Arr(values.iter().map(|&v| Json::Num(v)).collect()),
                );
            }
            None => {
                doc = doc
                    .field("median_sketch", self.median.to_json())
                    .field("p95_sketch", self.p95.to_json());
            }
        }
        doc
    }

    /// Restore a snapshot produced by [`OutcomeAccumulator::to_json`].
    pub fn from_json(json: &Json) -> Result<Self, String> {
        match json.get("schema").and_then(Json::as_str) {
            Some(s) if s == Self::SNAPSHOT_SCHEMA => {}
            other => return Err(format!("unsupported accumulator snapshot schema {other:?}")),
        }
        let makespan = Streaming::from_json(
            json.get("makespan")
                .ok_or("accumulator snapshot missing 'makespan'")?,
        )?;
        let exact_cap = match json.get("exact_cap") {
            Some(Json::Null) | None => usize::MAX,
            Some(v) => v
                .as_u64()
                .ok_or("accumulator 'exact_cap' must be an integer or null")?
                as usize,
        };
        let mut acc = OutcomeAccumulator {
            makespan,
            median: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
            exact: None,
            exact_cap,
            completed: json
                .get("completed")
                .and_then(Json::as_u64)
                .ok_or("accumulator snapshot missing 'completed'")?,
            ineligible: json
                .get("ineligible")
                .and_then(Json::as_u64)
                .ok_or("accumulator snapshot missing 'ineligible'")?,
        };
        if let Some(values) = json.get("exact") {
            let items = values
                .as_array()
                .ok_or("accumulator 'exact' must be an array")?;
            let mut exact = Vec::with_capacity(items.len());
            for item in items {
                exact.push(
                    item.as_f64()
                        .ok_or("non-numeric entry in accumulator 'exact'")?,
                );
            }
            if exact.len() as u64 != acc.makespan.count() {
                return Err("accumulator 'exact' length disagrees with 'makespan.count'".into());
            }
            acc.exact = Some(exact);
        } else {
            acc.median = P2Quantile::from_json(
                json.get("median_sketch")
                    .ok_or("accumulator snapshot missing sketches and exact sample")?,
            )?;
            acc.p95 = P2Quantile::from_json(
                json.get("p95_sketch")
                    .ok_or("accumulator snapshot missing 'p95_sketch'")?,
            )?;
        }
        Ok(acc)
    }

    /// Trials folded in so far.
    pub fn count(&self) -> u64 {
        self.makespan.count()
    }

    /// The makespan moments/extrema (`O(1)` access, no quantile work).
    pub fn makespan(&self) -> &Streaming {
        &self.makespan
    }

    /// Fraction of trials that completed within the step cap (0 when
    /// empty).
    pub fn completion_rate(&self) -> f64 {
        match self.count() {
            0 => 0.0,
            c => self.completed as f64 / c as f64,
        }
    }

    /// `true` when every folded trial completed.
    pub fn all_completed(&self) -> bool {
        self.completed == self.count()
    }

    /// Total machine-steps pointed at ineligible jobs across all trials.
    pub fn total_ineligible(&self) -> u64 {
        self.ineligible
    }

    /// `true` while quantiles are exact (sample within the cap).
    pub fn exact_quantiles(&self) -> bool {
        self.exact.is_some()
    }

    /// Summary of the makespan sample, or `None` if no trial was folded.
    pub fn summary(&self) -> Option<Summary> {
        let count = self.count() as usize;
        if count == 0 {
            return None;
        }
        let std_dev = self.makespan.std_dev().expect("nonempty");
        let std_err = std_dev / (count as f64).sqrt();
        let (median, p95, exact_quantiles) = match &self.exact {
            Some(values) => {
                let mut sorted = values.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in sample"));
                (
                    quantile_sorted(&sorted, 0.5),
                    quantile_sorted(&sorted, 0.95),
                    true,
                )
            }
            None => (
                self.median.estimate().expect("nonempty"),
                self.p95.estimate().expect("nonempty"),
                false,
            ),
        };
        Some(Summary {
            count,
            mean: self.makespan.mean().expect("nonempty"),
            std_dev,
            std_err,
            ci95: t_ci95_scale(count) * std_err,
            min: self.makespan.min().expect("nonempty"),
            median,
            p95,
            max: self.makespan.max().expect("nonempty"),
            exact_quantiles,
        })
    }
}

/// Quantile of an already-sorted sample (linear interpolation).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty() && (0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Chi-square homogeneity statistic for two samples of counts over shared
/// bins, plus its degrees of freedom. Bins where both samples are empty are
/// dropped; remaining bins with tiny expected counts are pooled into their
/// neighbor to keep the approximation sane.
pub fn chi_square_two_sample(a: &[u64], b: &[u64]) -> (f64, usize) {
    assert_eq!(a.len(), b.len(), "bin count mismatch");
    // Pool bins until every pooled bin has a combined count >= 5.
    let mut pooled: Vec<(f64, f64)> = Vec::new();
    let (mut acc_a, mut acc_b) = (0f64, 0f64);
    for (&ca, &cb) in a.iter().zip(b) {
        acc_a += ca as f64;
        acc_b += cb as f64;
        if acc_a + acc_b >= 5.0 {
            pooled.push((acc_a, acc_b));
            acc_a = 0.0;
            acc_b = 0.0;
        }
    }
    if acc_a + acc_b > 0.0 {
        if let Some(last) = pooled.last_mut() {
            last.0 += acc_a;
            last.1 += acc_b;
        } else {
            pooled.push((acc_a, acc_b));
        }
    }
    let total_a: f64 = pooled.iter().map(|p| p.0).sum();
    let total_b: f64 = pooled.iter().map(|p| p.1).sum();
    let total = total_a + total_b;
    if total == 0.0 || pooled.len() < 2 {
        return (0.0, 0);
    }
    let mut chi2 = 0.0;
    for &(ca, cb) in &pooled {
        let row = ca + cb;
        let ea = row * total_a / total;
        let eb = row * total_b / total;
        if ea > 0.0 {
            chi2 += (ca - ea).powi(2) / ea;
        }
        if eb > 0.0 {
            chi2 += (cb - eb).powi(2) / eb;
        }
    }
    (chi2, pooled.len() - 1)
}

/// Conservative chi-square critical value at significance ~0.001 for `dof`
/// degrees of freedom (Wilson–Hilferty approximation). Used by equivalence
/// tests: statistic above this ⇒ samples very likely differ.
pub fn chi_square_critical_001(dof: usize) -> f64 {
    if dof == 0 {
        return 0.0;
    }
    let k = dof as f64;
    // Wilson–Hilferty: chi2_q ≈ k * (1 - 2/(9k) + z_q * sqrt(2/(9k)))^3,
    // z_{0.999} ≈ 3.09.
    let z = 3.09;
    k * (1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt()).powi(3)
}

/// Default bin-count cap for [`histogram_pair`]: plenty of resolution
/// for a chi-square comparison, bounded memory regardless of the sample
/// magnitude.
pub const MAX_HISTOGRAM_BINS: usize = 4096;

/// Build shared-binning histograms for two u64 samples, with at most
/// [`MAX_HISTOGRAM_BINS`] bins.
///
/// Values up to the cap get one bin per value (bitwise the old
/// value-indexed behavior); beyond that, bins widen uniformly so the bin
/// *count* stays bounded — a corrupt or sentinel makespan in the
/// millions costs kilobytes, not a multi-MB (or OOM-ing) allocation.
/// The chi-square test downstream stays exact on the pooled bins.
pub fn histogram_pair(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    histogram_pair_capped(a, b, MAX_HISTOGRAM_BINS)
}

/// [`histogram_pair`] with an explicit bin-count cap (`cap >= 1`).
pub fn histogram_pair_capped(a: &[u64], b: &[u64], cap: usize) -> (Vec<u64>, Vec<u64>) {
    assert!(cap >= 1, "histogram needs at least one bin");
    let max = a.iter().chain(b).copied().max().unwrap_or(0);
    // Smallest uniform width keeping `max/width` under the cap:
    // `ceil((max+1)/cap)`. Width 1 (value-indexed bins) whenever the
    // range already fits.
    let width = max / cap as u64 + 1;
    let bins = (max / width) as usize + 1;
    let mut ha = vec![0u64; bins];
    let mut hb = vec![0u64; bins];
    for &v in a {
        ha[(v / width) as usize] += 1;
    }
    for &v in b {
        hb[(v / width) as usize] += 1;
    }
    (ha, hb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = summarize(&[4.0; 10]).expect("nonempty");
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 4.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
        assert!(s.exact_quantiles);
    }

    #[test]
    fn summary_basic_moments() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]).expect("nonempty");
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn empty_sample_is_none_not_panic() {
        assert!(summarize(&[]).is_none());
        assert!(OutcomeAccumulator::new().summary().is_none());
    }

    /// Exact two-pass reference for the streaming moments.
    fn exact_moments(values: &[f64]) -> (f64, f64, f64, f64) {
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = if values.len() > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (mean, var.sqrt(), min, max)
    }

    fn exact_quantile(values: &[f64], q: f64) -> f64 {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        quantile_sorted(&sorted, q)
    }

    #[test]
    fn accumulator_switches_to_sketch_past_the_cap() {
        let mut acc = OutcomeAccumulator::with_exact_cap(8);
        for i in 0..8 {
            acc.push_makespan(i as f64, true, 0);
        }
        assert!(acc.exact_quantiles());
        assert!(acc.summary().unwrap().exact_quantiles);
        acc.push_makespan(8.0, true, 0);
        assert!(!acc.exact_quantiles());
        let s = acc.summary().unwrap();
        assert!(!s.exact_quantiles);
        // Moments stay exact regardless of the quantile mode.
        assert!((s.mean - 4.0).abs() < 1e-12);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 8.0);
    }

    #[test]
    fn accumulator_counts_completion_and_violations() {
        let mut acc = OutcomeAccumulator::new();
        acc.push_makespan(3.0, true, 0);
        acc.push_makespan(9.0, false, 4);
        acc.push_makespan(5.0, true, 1);
        assert_eq!(acc.count(), 3);
        assert!((acc.completion_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!(!acc.all_completed());
        assert_eq!(acc.total_ineligible(), 5);
    }

    #[test]
    fn p2_sketch_tracks_adversarial_shapes() {
        // Sorted ascending, sorted descending, constant, and bimodal
        // inputs: the sketch's median/p95 must stay within a tolerance of
        // the exact quantiles even on these worst cases.
        let n = 4000;
        let ascending: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let descending: Vec<f64> = (0..n).map(|i| (n - i) as f64).collect();
        let constant = vec![13.5; n];
        let bimodal: Vec<f64> = (0..n)
            .map(|i| if i % 10 < 7 { 10.0 } else { 1000.0 })
            .collect();
        for (name, values) in [
            ("ascending", ascending),
            ("descending", descending),
            ("constant", constant),
            ("bimodal", bimodal),
        ] {
            for q in [0.5, 0.95] {
                let mut sketch = P2Quantile::new(q);
                for &v in &values {
                    sketch.push(v);
                }
                let got = sketch.estimate().unwrap();
                let want = exact_quantile(&values, q);
                let spread = exact_quantile(&values, 1.0) - exact_quantile(&values, 0.0);
                let tol = (spread * 0.05).max(1e-9);
                assert!(
                    (got - want).abs() <= tol,
                    "{name} q{q}: sketch {got} vs exact {want} (tol {tol})"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Streaming mean/std/min/max match the exact two-pass batch
        /// computation to 1e-9 (relative to the sample scale).
        #[test]
        fn streaming_moments_match_exact(
            values in proptest::collection::vec(-1.0e6f64..1.0e6, 1..400),
        ) {
            let mut s = Streaming::new();
            for &v in &values {
                s.push(v);
            }
            let (mean, std_dev, min, max) = exact_moments(&values);
            let scale = 1.0 + values.iter().fold(0.0f64, |a, v| a.max(v.abs()));
            prop_assert!((s.mean().unwrap() - mean).abs() <= 1e-9 * scale);
            prop_assert!((s.std_dev().unwrap() - std_dev).abs() <= 1e-9 * scale);
            prop_assert_eq!(s.min().unwrap(), min);
            prop_assert_eq!(s.max().unwrap(), max);
            prop_assert_eq!(s.count(), values.len() as u64);
        }

        /// Within the exact cap the accumulator's summary is bitwise the
        /// sort-based computation (the small-sample fallback).
        #[test]
        fn small_samples_stay_exact(
            values in proptest::collection::vec(0.0f64..1.0e4, 1..64),
        ) {
            let s = summarize(&values).unwrap();
            prop_assert!(s.exact_quantiles);
            prop_assert_eq!(s.median, exact_quantile(&values, 0.5));
            prop_assert_eq!(s.p95, exact_quantile(&values, 0.95));
            prop_assert_eq!(s.min, exact_quantile(&values, 0.0));
            prop_assert_eq!(s.max, exact_quantile(&values, 1.0));
        }

        /// The P² sketch stays within a coarse tolerance of the exact
        /// quantile on random inputs well past the exact cap.
        #[test]
        fn sketch_tracks_random_inputs(
            values in proptest::collection::vec(0.0f64..1000.0, 1000..3000),
        ) {
            let mut sketch = P2Quantile::new(0.5);
            for &v in &values {
                sketch.push(v);
            }
            let got = sketch.estimate().unwrap();
            let want = exact_quantile(&values, 0.5);
            prop_assert!(
                (got - want).abs() <= 50.0,
                "sketch {} vs exact {}", got, want
            );
        }
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted = [0.0, 10.0];
        assert_eq!(quantile_sorted(&sorted, 0.5), 5.0);
        assert_eq!(quantile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    fn chi_square_identical_histograms_is_zero() {
        let h = vec![10, 20, 30, 5];
        let (chi2, _) = chi_square_two_sample(&h, &h);
        assert!(chi2 < 1e-9);
    }

    #[test]
    fn chi_square_detects_blatant_difference() {
        let a = vec![100, 0, 0];
        let b = vec![0, 0, 100];
        let (chi2, dof) = chi_square_two_sample(&a, &b);
        assert!(chi2 > chi_square_critical_001(dof));
    }

    #[test]
    fn chi_square_pools_sparse_bins() {
        let a = vec![3, 2, 1, 0, 50];
        let b = vec![2, 3, 0, 1, 50];
        let (chi2, dof) = chi_square_two_sample(&a, &b);
        assert!(dof >= 1);
        assert!(
            chi2 <= chi_square_critical_001(dof),
            "similar samples accepted"
        );
    }

    #[test]
    fn critical_values_reasonable() {
        // Known chi-square 0.001 critical values: dof=1 ≈ 10.8, dof=10 ≈ 29.6.
        assert!((chi_square_critical_001(1) - 10.8).abs() < 1.5);
        assert!((chi_square_critical_001(10) - 29.6).abs() < 1.5);
    }

    #[test]
    fn histogram_pair_shares_bins() {
        let (ha, hb) = histogram_pair(&[0, 2, 2], &[1]);
        assert_eq!(ha, vec![1, 0, 2]);
        assert_eq!(hb, vec![0, 1, 0]);
    }

    #[test]
    fn histogram_pair_bounds_bins_on_large_magnitudes() {
        // Regression: value-indexed bins used to allocate max(sample)+1
        // entries — tens of MB for makespans in the millions, OOM for a
        // corrupt sentinel. Bins must stay capped with widened ranges.
        let a = vec![3, 5_000_000, 12_345_678];
        let b = vec![4, 9_999_999];
        let (ha, hb) = histogram_pair(&a, &b);
        assert!(ha.len() <= MAX_HISTOGRAM_BINS, "bins {}", ha.len());
        assert_eq!(ha.len(), hb.len());
        assert_eq!(ha.iter().sum::<u64>(), a.len() as u64);
        assert_eq!(hb.iter().sum::<u64>(), b.len() as u64);
        // Identical samples still produce a zero statistic on pooled bins.
        let (hx, hy) = histogram_pair(&a, &a);
        let (chi2, _) = chi_square_two_sample(&hx, &hy);
        assert!(chi2 < 1e-9);
        // Within the cap the binning stays bitwise the old value-indexed
        // one.
        let (ha, _) = histogram_pair(&[0, 7, 7], &[1]);
        assert_eq!(ha.len(), 8);
        assert_eq!(ha[7], 2);
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn student_t_quantiles_match_tables() {
        // Two-sided 95% critical values (t_{0.975, df}) from standard
        // tables.
        for (df, want) in [
            (1.0, 12.7062),
            (2.0, 4.3027),
            (3.0, 3.1824),
            (4.0, 2.7764),
            (9.0, 2.2622),
            (29.0, 2.0452),
            (99.0, 1.9842),
        ] {
            let got = student_t_quantile(0.975, df);
            assert!(
                (got - want).abs() < 5e-4,
                "t(0.975, {df}) = {got}, want {want}"
            );
        }
        // Converges to the normal z as df grows.
        assert!((student_t_quantile(0.975, 1e6) - 1.95996).abs() < 1e-3);
        // Symmetry and median.
        assert_eq!(student_t_quantile(0.5, 7.0), 0.0);
        assert!((student_t_quantile(0.025, 4.0) + student_t_quantile(0.975, 4.0)).abs() < 1e-9);
    }

    #[test]
    fn t_cdf_quantile_roundtrip() {
        for df in [1.0, 3.0, 10.0, 50.0] {
            for p in [0.6, 0.9, 0.975, 0.999] {
                let t = student_t_quantile(p, df);
                assert!(
                    (student_t_cdf(t, df) - p).abs() < 1e-9,
                    "df {df} p {p}: cdf(quantile) = {}",
                    student_t_cdf(t, df)
                );
            }
        }
    }

    #[test]
    fn ci95_uses_student_t_at_small_n() {
        // Regression (satellite bugfix): the old z≈1.96 normal
        // approximation understated small-n intervals. Pin the summary
        // half-widths to t-based values.
        // n = 5, std_dev = sqrt(2.5), std_err = sqrt(0.5).
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let want = 2.7764 * (0.5f64).sqrt();
        assert!(
            (s.ci95 - want).abs() < 1e-3,
            "n=5 ci95 {} want {want}",
            s.ci95
        );
        assert!(s.ci95 > 1.96 * s.std_err, "t must widen past the normal");
        // n = 2: t_{0.975,1} = 12.706 — the normal approximation was off
        // by a factor of ~6.5 here.
        let s2 = summarize(&[1.0, 3.0]).unwrap();
        assert!((s2.ci95 - 12.7062 * s2.std_err).abs() < 1e-3 * s2.std_err);
        // n = 1: degenerate, zero half-width (std_err is zero).
        let s1 = summarize(&[4.0]).unwrap();
        assert_eq!(s1.ci95, 0.0);
    }

    #[test]
    fn paired_delta_crn_basics() {
        let mut pd = PairedDelta::new();
        // Policy A always 2 steps slower than B under the same seed.
        for base in [10.0, 14.0, 9.0, 30.0, 22.0] {
            pd.push(base + 2.0, base);
        }
        assert_eq!(pd.count(), 5);
        assert_eq!(pd.mean(), Some(2.0));
        assert_eq!(pd.ci95(), Some(0.0)); // constant difference: zero CI
        assert_eq!(pd.significant(), Some(true));

        // Self-comparison: never significant.
        let mut same = PairedDelta::new();
        for v in [3.0, 8.0, 5.0] {
            same.push(v, v);
        }
        assert_eq!(same.mean(), Some(0.0));
        assert_eq!(same.significant(), Some(false));
        assert_eq!(PairedDelta::new().significant(), None);

        // Snapshot round-trip.
        let restored = PairedDelta::from_json(&pd.to_json()).unwrap();
        assert_eq!(restored.mean(), pd.mean());
        assert_eq!(restored.count(), pd.count());
    }

    #[test]
    fn precision_stopping_rules() {
        let fixed = Precision::FixedTrials(10);
        assert_eq!(fixed.check(9, 5.0, 100.0), None);
        assert_eq!(fixed.check(10, 5.0, 100.0), Some(StopReason::FixedBudget));
        assert_eq!(fixed.max_trials(), 10);

        let target = Precision::TargetCi {
            half_width: 0.5,
            relative: false,
            min_trials: 8,
            max_trials: 64,
        };
        // Below min_trials: never stop on CI, however tight.
        assert_eq!(target.check(4, 5.0, 0.0), None);
        // CI reached at/past min_trials.
        assert_eq!(target.check(8, 5.0, 0.4), Some(StopReason::CiReached));
        // CI not reached, budget not exhausted: keep going.
        assert_eq!(target.check(16, 5.0, 0.9), None);
        // Ceiling.
        assert_eq!(target.check(64, 5.0, 0.9), Some(StopReason::MaxTrials));
        // CI satisfied exactly at the ceiling counts as converged.
        assert_eq!(target.check(64, 5.0, 0.4), Some(StopReason::CiReached));

        let relative = Precision::TargetCi {
            half_width: 0.1,
            relative: true,
            min_trials: 2,
            max_trials: 1000,
        };
        assert_eq!(relative.check(50, 20.0, 1.9), Some(StopReason::CiReached));
        assert_eq!(relative.check(50, 20.0, 2.1), None);

        assert_eq!(StopReason::CiReached.as_str(), "ci-reached");
        assert_eq!(StopReason::FixedBudget.as_str(), "fixed-budget");
        assert_eq!(StopReason::MaxTrials.as_str(), "max-trials");
    }

    /// Push `values[..split]` into one accumulator, snapshot/restore it,
    /// push the rest into the restored copy, and compare against pushing
    /// everything into a fresh accumulator — all state bitwise equal.
    fn snapshot_roundtrip_case(values: &[f64], split: usize, cap: usize) {
        let mut first = OutcomeAccumulator::with_exact_cap(cap);
        for &v in &values[..split] {
            first.push_makespan(v, true, 1);
        }
        let snapshot = first.to_json();
        let mut restored = OutcomeAccumulator::from_json(&snapshot).unwrap();
        let mut whole = OutcomeAccumulator::with_exact_cap(cap);
        for &v in values {
            whole.push_makespan(v, true, 1);
        }
        for &v in &values[split..] {
            restored.push_makespan(v, true, 1);
        }
        assert_eq!(
            restored.to_json().to_compact(),
            whole.to_json().to_compact(),
            "split {split} cap {cap}"
        );
        let (r, w) = (restored.summary().unwrap(), whole.summary().unwrap());
        assert_eq!(r.mean.to_bits(), w.mean.to_bits());
        assert_eq!(r.median.to_bits(), w.median.to_bits());
        assert_eq!(r.p95.to_bits(), w.p95.to_bits());
    }

    #[test]
    fn accumulator_snapshot_roundtrips_bitwise() {
        let values: Vec<f64> = (0..40).map(|i| ((i * 37 + 11) % 23) as f64).collect();
        // Exact regime, sketch regime, and a cap crossing that happens
        // *after* the snapshot.
        snapshot_roundtrip_case(&values, 10, usize::MAX);
        snapshot_roundtrip_case(&values, 10, 8); // snapshot after crossing
        snapshot_roundtrip_case(&values, 5, 8); // crossing after restore
        snapshot_roundtrip_case(&values, 0, 16);
        snapshot_roundtrip_case(&values, 40, 16);
    }

    #[test]
    fn accumulator_merge_matches_direct_pushes() {
        let values: Vec<f64> = (0..30).map(|i| ((i * 17 + 3) % 19) as f64).collect();
        let mut left = OutcomeAccumulator::with_exact_cap(12);
        let mut right = OutcomeAccumulator::with_exact_cap(usize::MAX);
        let mut whole = OutcomeAccumulator::with_exact_cap(12);
        for (i, &v) in values.iter().enumerate() {
            let completed = i % 3 != 0;
            whole.push_makespan(v, completed, i as u64);
            if i < 9 {
                left.push_makespan(v, completed, i as u64);
            } else {
                right.push_makespan(v, completed, i as u64);
            }
        }
        left.merge(&right).unwrap();
        assert_eq!(left.to_json().to_compact(), whole.to_json().to_compact());
        assert_eq!(left.completion_rate(), whole.completion_rate());
        assert_eq!(left.total_ineligible(), whole.total_ineligible());

        // A sketch-collapsed right-hand side cannot merge faithfully; the
        // refusal is typed so orchestrators can reroute to the extend path.
        let mut collapsed = OutcomeAccumulator::with_exact_cap(4);
        for &v in &values[..10] {
            collapsed.push_makespan(v, true, 0);
        }
        assert!(!collapsed.exact_quantiles());
        let err = OutcomeAccumulator::new()
            .merge(&collapsed)
            .expect_err("collapsed RHS must not merge");
        assert_eq!(err, MergeError::SketchCollapsed { samples: 10 });
        assert!(err.to_string().contains("extend/replay"));
    }

    #[test]
    fn snapshot_rejects_garbage() {
        assert!(OutcomeAccumulator::from_json(&Json::obj()).is_err());
        assert!(OutcomeAccumulator::from_json(&Json::obj().field("schema", "nope")).is_err());
        let mut acc = OutcomeAccumulator::new();
        acc.push_makespan(3.0, true, 0);
        let good = acc.to_json();
        assert!(OutcomeAccumulator::from_json(&good).is_ok());
        let truncated = good.field("exact", Json::Arr(vec![]));
        assert!(OutcomeAccumulator::from_json(&truncated).is_err());
    }
}
