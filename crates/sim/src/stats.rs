//! Summary statistics and a two-sample chi-square test.
//!
//! Just enough statistics for the experiment harness: mean/variance with a
//! normal-approximation confidence interval, quantiles, and a chi-square
//! homogeneity test used to check the SUU ≡ SUU* equivalence (Theorem 10)
//! empirically.

/// Summary of a sample of makespans (or any non-negative metric).
#[derive(Debug, Clone)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased).
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_err: f64,
    /// 95% CI half-width (normal approximation).
    pub ci95: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

/// Summarize a sample. Panics on an empty sample.
pub fn summarize(values: &[f64]) -> Summary {
    assert!(!values.is_empty(), "empty sample");
    let count = values.len();
    let mean = values.iter().sum::<f64>() / count as f64;
    let var = if count > 1 {
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (count - 1) as f64
    } else {
        0.0
    };
    let std_dev = var.sqrt();
    let std_err = std_dev / (count as f64).sqrt();
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in sample"));
    Summary {
        count,
        mean,
        std_dev,
        std_err,
        ci95: 1.96 * std_err,
        min: sorted[0],
        median: quantile_sorted(&sorted, 0.5),
        p95: quantile_sorted(&sorted, 0.95),
        max: sorted[count - 1],
    }
}

/// Quantile of an already-sorted sample (linear interpolation).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty() && (0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Chi-square homogeneity statistic for two samples of counts over shared
/// bins, plus its degrees of freedom. Bins where both samples are empty are
/// dropped; remaining bins with tiny expected counts are pooled into their
/// neighbor to keep the approximation sane.
pub fn chi_square_two_sample(a: &[u64], b: &[u64]) -> (f64, usize) {
    assert_eq!(a.len(), b.len(), "bin count mismatch");
    // Pool bins until every pooled bin has a combined count >= 5.
    let mut pooled: Vec<(f64, f64)> = Vec::new();
    let (mut acc_a, mut acc_b) = (0f64, 0f64);
    for (&ca, &cb) in a.iter().zip(b) {
        acc_a += ca as f64;
        acc_b += cb as f64;
        if acc_a + acc_b >= 5.0 {
            pooled.push((acc_a, acc_b));
            acc_a = 0.0;
            acc_b = 0.0;
        }
    }
    if acc_a + acc_b > 0.0 {
        if let Some(last) = pooled.last_mut() {
            last.0 += acc_a;
            last.1 += acc_b;
        } else {
            pooled.push((acc_a, acc_b));
        }
    }
    let total_a: f64 = pooled.iter().map(|p| p.0).sum();
    let total_b: f64 = pooled.iter().map(|p| p.1).sum();
    let total = total_a + total_b;
    if total == 0.0 || pooled.len() < 2 {
        return (0.0, 0);
    }
    let mut chi2 = 0.0;
    for &(ca, cb) in &pooled {
        let row = ca + cb;
        let ea = row * total_a / total;
        let eb = row * total_b / total;
        if ea > 0.0 {
            chi2 += (ca - ea).powi(2) / ea;
        }
        if eb > 0.0 {
            chi2 += (cb - eb).powi(2) / eb;
        }
    }
    (chi2, pooled.len() - 1)
}

/// Conservative chi-square critical value at significance ~0.001 for `dof`
/// degrees of freedom (Wilson–Hilferty approximation). Used by equivalence
/// tests: statistic above this ⇒ samples very likely differ.
pub fn chi_square_critical_001(dof: usize) -> f64 {
    if dof == 0 {
        return 0.0;
    }
    let k = dof as f64;
    // Wilson–Hilferty: chi2_q ≈ k * (1 - 2/(9k) + z_q * sqrt(2/(9k)))^3,
    // z_{0.999} ≈ 3.09.
    let z = 3.09;
    k * (1.0 - 2.0 / (9.0 * k) + z * (2.0 / (9.0 * k)).sqrt()).powi(3)
}

/// Build histograms over `0..=max` for two u64 samples (shared binning).
pub fn histogram_pair(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let max = a.iter().chain(b).copied().max().unwrap_or(0) as usize;
    let mut ha = vec![0u64; max + 1];
    let mut hb = vec![0u64; max + 1];
    for &v in a {
        ha[v as usize] += 1;
    }
    for &v in b {
        hb[v as usize] += 1;
    }
    (ha, hb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = summarize(&[4.0; 10]);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 4.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_basic_moments() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted = [0.0, 10.0];
        assert_eq!(quantile_sorted(&sorted, 0.5), 5.0);
        assert_eq!(quantile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(quantile_sorted(&sorted, 1.0), 10.0);
    }

    #[test]
    fn chi_square_identical_histograms_is_zero() {
        let h = vec![10, 20, 30, 5];
        let (chi2, _) = chi_square_two_sample(&h, &h);
        assert!(chi2 < 1e-9);
    }

    #[test]
    fn chi_square_detects_blatant_difference() {
        let a = vec![100, 0, 0];
        let b = vec![0, 0, 100];
        let (chi2, dof) = chi_square_two_sample(&a, &b);
        assert!(chi2 > chi_square_critical_001(dof));
    }

    #[test]
    fn chi_square_pools_sparse_bins() {
        let a = vec![3, 2, 1, 0, 50];
        let b = vec![2, 3, 0, 1, 50];
        let (chi2, dof) = chi_square_two_sample(&a, &b);
        assert!(dof >= 1);
        assert!(
            chi2 <= chi_square_critical_001(dof),
            "similar samples accepted"
        );
    }

    #[test]
    fn critical_values_reasonable() {
        // Known chi-square 0.001 critical values: dof=1 ≈ 10.8, dof=10 ≈ 29.6.
        assert!((chi_square_critical_001(1) - 10.8).abs() < 1.5);
        assert!((chi_square_critical_001(10) - 29.6).abs() < 1.5);
    }

    #[test]
    fn histogram_pair_shares_bins() {
        let (ha, hb) = histogram_pair(&[0, 2, 2], &[1]);
        assert_eq!(ha, vec![1, 0, 2]);
        assert_eq!(hb, vec![0, 1, 0]);
    }
}
