//! Execution tracing: per-step records of what every machine did and when
//! jobs completed, plus an ASCII renderer for debugging schedules.
//!
//! Tracing wraps any [`Policy`] transparently, so the engine itself stays
//! allocation-lean when tracing is off.

use crate::policy::{Assignment, Decision, Policy, StateView};
use suu_core::JobId;

/// One recorded timestep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Assignment row (one entry per machine).
    pub assignment: Vec<Option<JobId>>,
    /// Jobs that completed *during* this step.
    pub completed: Vec<JobId>,
}

/// A full execution trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Steps in order.
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Steps during which machine `i` worked on job `j`.
    pub fn machine_steps_on(&self, i: usize, j: JobId) -> usize {
        self.steps
            .iter()
            .filter(|s| s.assignment[i] == Some(j))
            .count()
    }

    /// Render as an ASCII Gantt-style chart: one row per machine, one
    /// column per step; cells show the job index (mod 100), `--` when
    /// idle, and `*` marks completion steps in the footer.
    pub fn render(&self) -> String {
        if self.steps.is_empty() {
            return "(empty trace)".to_string();
        }
        let m = self.steps[0].assignment.len();
        let mut out = String::new();
        for i in 0..m {
            out.push_str(&format!("m{i:<3}|"));
            for s in &self.steps {
                match s.assignment[i] {
                    Some(j) => out.push_str(&format!("{:>3}", j.0 % 1000)),
                    None => out.push_str("  -"),
                }
            }
            out.push('\n');
        }
        out.push_str("done|");
        for s in &self.steps {
            out.push_str(if s.completed.is_empty() { "   " } else { "  *" });
        }
        out.push('\n');
        out
    }
}

/// A policy wrapper that records every assignment row.
///
/// Completion events are reconstructed by the wrapper from the remaining
/// set it observes at the *next* step, so it composes with any policy and
/// needs no engine hooks. To keep the trace step-accurate, the wrapper
/// forces per-step wake-ups (capping the inner decision's), so a traced
/// execution runs at dense pace even under the event engine — tracing is
/// a debugging tool, not a hot path.
pub struct Tracing<P> {
    inner: P,
    trace: Trace,
    prev_remaining: Option<Vec<u32>>,
}

impl<P: Policy> Tracing<P> {
    /// Wrap a policy.
    pub fn new(inner: P) -> Self {
        Tracing {
            inner,
            trace: Trace::default(),
            prev_remaining: None,
        }
    }

    /// The trace recorded so far (cleared on `reset`).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Unwrap, returning the inner policy and the final trace.
    pub fn into_parts(self) -> (P, Trace) {
        (self.inner, self.trace)
    }
}

impl<P: Policy> Policy for Tracing<P> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.trace = Trace::default();
        self.prev_remaining = None;
    }

    fn reseed(&mut self, seed: u64) {
        self.inner.reseed(seed);
    }

    // No `is_stationary` delegation, deliberately: the wrapper records
    // per-step rows and forces per-step wake-ups, so a traced policy is
    // never stationary even when the wrapped one is.

    fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
        // Completions since the previous step = prev_remaining \ remaining.
        let current: Vec<u32> = view.remaining.iter().collect();
        if let Some(prev) = &self.prev_remaining {
            let completed: Vec<JobId> = prev
                .iter()
                .filter(|j| !view.remaining.contains(**j))
                .map(|&j| JobId(j))
                .collect();
            if let Some(last) = self.trace.steps.last_mut() {
                last.completed = completed;
            }
        }
        self.prev_remaining = Some(current);

        let _ = self.inner.decide(view, out);
        self.trace.steps.push(TraceStep {
            assignment: out.slots().to_vec(),
            completed: Vec::new(), // filled in at the next observation
        });
        // Force per-step pacing so every step lands in the trace.
        Decision::step(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{execute, EngineKind, ExecConfig, Semantics};
    use suu_core::{workload, Precedence};
    use suu_dag::ChainSet;

    struct Gang;
    impl Policy for Gang {
        fn name(&self) -> &str {
            "gang"
        }
        fn reset(&mut self) {}
        fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
            out.fill(view.eligible.first().map(JobId));
            Decision::HOLD
        }
    }

    #[test]
    fn trace_records_every_step_under_both_engines() {
        let cs = ChainSet::new(3, vec![vec![0, 1, 2]]).unwrap();
        let inst = workload::deterministic(2, 3, Precedence::Chains(cs));
        for engine in [EngineKind::Dense, EngineKind::Events] {
            let mut traced = Tracing::new(Gang);
            let out = execute(
                &inst,
                &mut traced,
                &ExecConfig {
                    semantics: Semantics::SuuStar,
                    engine,
                    max_steps: 100,
                },
                1,
            );
            assert!(out.completed);
            assert_eq!(traced.trace().len() as u64, out.makespan);
            // Each of the 3 jobs gets exactly one step on each machine.
            for j in 0..3u32 {
                assert_eq!(traced.trace().machine_steps_on(0, JobId(j)), 1);
                assert_eq!(traced.trace().machine_steps_on(1, JobId(j)), 1);
            }
        }
    }

    #[test]
    fn completions_reconstructed_between_steps() {
        // Deterministic chain: job k completes at step k+1; the trace's
        // step k should list it once the next observation arrives. The
        // final completion has no next observation — by design it stays
        // open (the engine result carries exact completion times).
        let cs = ChainSet::new(2, vec![vec![0, 1]]).unwrap();
        let inst = workload::deterministic(1, 2, Precedence::Chains(cs));
        let mut traced = Tracing::new(Gang);
        let out = execute(&inst, &mut traced, &ExecConfig::default(), 2);
        assert!(out.completed);
        let trace = traced.trace();
        assert_eq!(trace.steps[0].completed, vec![JobId(0)]);
    }

    #[test]
    fn render_produces_rows_per_machine() {
        let inst = workload::deterministic(2, 2, Precedence::Independent);
        let mut traced = Tracing::new(Gang);
        execute(&inst, &mut traced, &ExecConfig::default(), 3);
        let art = traced.trace().render();
        assert!(art.contains("m0  |"));
        assert!(art.contains("m1  |"));
        assert!(art.contains("done|"));
    }

    #[test]
    fn reset_clears_trace() {
        let inst = workload::deterministic(1, 1, Precedence::Independent);
        let mut traced = Tracing::new(Gang);
        execute(&inst, &mut traced, &ExecConfig::default(), 4);
        assert!(!traced.trace().is_empty());
        traced.reset();
        assert!(traced.trace().is_empty());
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert_eq!(Trace::default().render(), "(empty trace)");
    }
}
