//! The parallel, seed-deterministic Monte-Carlo evaluator.
//!
//! One [`Evaluator`] is the single trial-running entry point in the
//! workspace. Trials fan out across a worker pool (with worker-local
//! policy state, so an expensive LP-built policy is constructed once per
//! worker, not once per trial) while remaining **bitwise deterministic**:
//!
//! * trial `k`'s engine randomness is the seed
//!   `derive_seed(master_seed, k, ENGINE_DOMAIN)`, from which the engine
//!   derives counter-based *per-job* streams (so the dense, event and
//!   batched engines consume identical randomness — see
//!   [`crate::engine`]);
//! * trial `k`'s *policy-internal* randomness (e.g. `SUU-C`'s Theorem-7
//!   start delays) is pinned by calling [`crate::Policy::reseed`] with
//!   `derive_seed(master_seed, k, POLICY_DOMAIN)` before execution.
//!
//! Nothing a worker thread did before a trial can leak into it, so the
//! outcome vector is a pure function of `(instance, policy spec,
//! master_seed, trials)` — identical on 1 thread or 64. A SplitMix64 mix
//! (rather than `base_seed + k`) keeps nearby master seeds from sharing
//! trial streams.
//!
//! Two result shapes:
//!
//! * [`Evaluator::run`] / [`Evaluator::run_batched`] collect every
//!   [`ExecOutcome`] into an [`EvalReport`] — for differential tests and
//!   histogram experiments that need the raw sample;
//! * [`Evaluator::run_stats`] (the default for the bench harness) folds
//!   trials from the batched engine straight into an
//!   [`OutcomeAccumulator`], returning [`EvalStats`] — `O(threads ·
//!   batch)` peak memory, independent of the trial count, with chunk
//!   folding pinned to trial order so even the order-sensitive P²
//!   sketches are bitwise identical at any thread count.
//!
//! Because every trial's randomness is keyed by its **index** (not by
//! anything a previous trial did), a cell is *resumable*:
//! [`Evaluator::extend_stats`] folds trials `n..n+k` into a saved
//! accumulator and is bitwise identical — moments *and* sketch state —
//! to a fresh `n+k`-trial run at any thread count. That makes
//! sequential stopping cheap: [`Evaluator::run_adaptive`] grows a cell
//! in deterministic rounds until a [`Precision`] rule fires, and
//! [`Evaluator::run_paired`] compares two policies on **common random
//! numbers** (the same per-trial engine seeds), so the variance of the
//! per-trial *difference* — not of each mean — drives the budget.
//! Checkpoints serialize via [`EvalStats::to_json`] and resume through
//! [`Evaluator::extend_stats`] (grow to an explicit target) or
//! [`Evaluator::resume_adaptive`] (keep growing under a [`Precision`]
//! rule) — the machinery the `suu-serve` daemon's content-addressed
//! result cache is built on.

use crate::engine::batch::{BatchRunner, BatchTrial};
use crate::engine::{execute, EngineKind, ExecConfig, ExecOutcome, Semantics};
use crate::policy::Policy;
use crate::registry::{PolicyRegistry, PolicySpec, RegistryError};
use crate::stats::{OutcomeAccumulator, PairedDelta, Precision, StopReason, Summary};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};
use suu_core::json::Json;
use suu_core::SuuInstance;

/// Domain tag for engine (job-outcome) randomness.
const ENGINE_DOMAIN: u64 = 0x45;
/// Domain tag for policy-internal randomness.
const POLICY_DOMAIN: u64 = 0x50;

/// Statistically independent 64-bit seed for `(master, index, domain)` —
/// a SplitMix64 finalization over the mixed triple.
pub fn derive_seed(master: u64, index: u64, domain: u64) -> u64 {
    let mut z = master
        ^ domain.wrapping_mul(0xA076_1D64_78BD_642F)
        ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Evaluation parameters.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Number of independent trials.
    pub trials: usize,
    /// Root of every trial's randomness.
    pub master_seed: u64,
    /// Worker threads (`0` = one per available core, `1` = serial).
    pub threads: usize,
    /// Trials per batch handed to the batched engine by the streaming
    /// paths ([`Evaluator::run_stats`], [`Evaluator::run_batched`]);
    /// bounds their peak memory at `O(threads · batch)` outcomes. `0`
    /// means the default (256). The collecting [`Evaluator::run`] path
    /// ignores it.
    pub batch: usize,
    /// Engine configuration shared by all trials.
    pub exec: ExecConfig,
}

/// Default [`EvalConfig::batch`] size.
pub const DEFAULT_BATCH: usize = 256;

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            trials: 100,
            master_seed: 0x5EED,
            threads: 0,
            batch: DEFAULT_BATCH,
            exec: ExecConfig::default(),
        }
    }
}

/// What an evaluation produced, plus how long it took.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Display name of the evaluated policy.
    pub policy: String,
    /// Configuration the evaluation ran under.
    pub config: EvalConfig,
    /// Per-trial outcomes, in trial order.
    pub outcomes: Vec<ExecOutcome>,
    /// Wall-clock time for the whole batch.
    pub wall_clock: Duration,
}

impl EvalReport {
    /// Makespans as `f64`s, in trial order.
    pub fn makespans(&self) -> Vec<f64> {
        self.outcomes.iter().map(|o| o.makespan as f64).collect()
    }

    /// Mean makespan. Panics on zero trials.
    pub fn mean_makespan(&self) -> f64 {
        assert!(!self.outcomes.is_empty(), "no outcomes");
        self.outcomes.iter().map(|o| o.makespan as f64).sum::<f64>() / self.outcomes.len() as f64
    }

    /// Fraction of trials that completed within the step cap.
    pub fn completion_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.completed).count() as f64 / self.outcomes.len() as f64
    }

    /// `true` when every trial completed within the step cap.
    pub fn all_completed(&self) -> bool {
        self.outcomes.iter().all(|o| o.completed)
    }

    /// Total machine-steps the policy pointed at ineligible jobs (schedule
    /// bugs; the paper forbids them).
    pub fn total_ineligible(&self) -> u64 {
        self.outcomes.iter().map(|o| o.ineligible_assignments).sum()
    }

    /// Summary statistics of the makespan sample (`None` on zero trials).
    pub fn summary(&self) -> Option<Summary> {
        self.to_stats().summary()
    }

    /// Collapse the buffered outcomes into streaming statistics (fed in
    /// trial order, so the result is bitwise what [`Evaluator::run_stats`]
    /// produces for the same configuration).
    pub fn to_stats(&self) -> EvalStats {
        let mut acc = OutcomeAccumulator::new();
        for o in &self.outcomes {
            acc.push(o);
        }
        EvalStats {
            policy: self.policy.clone(),
            config: self.config,
            acc,
            wall_clock: self.wall_clock,
        }
    }
}

/// Streaming evaluation result: everything [`EvalReport`] can tell the
/// report layer, in memory independent of the trial count — no retained
/// per-trial outcomes, just an [`OutcomeAccumulator`].
#[derive(Debug, Clone)]
pub struct EvalStats {
    /// Display name of the evaluated policy.
    pub policy: String,
    /// Configuration the evaluation ran under.
    pub config: EvalConfig,
    /// Folded trial statistics.
    pub acc: OutcomeAccumulator,
    /// Wall-clock time for the whole run.
    pub wall_clock: Duration,
}

impl EvalStats {
    /// Trials folded in.
    pub fn trials(&self) -> u64 {
        self.acc.count()
    }

    /// Mean makespan — `O(1)`, straight from the Welford state (bitwise
    /// the value [`EvalStats::summary`] reports, without its quantile
    /// sort). Panics on zero trials (mirrors
    /// [`EvalReport::mean_makespan`]).
    pub fn mean_makespan(&self) -> f64 {
        self.acc.makespan().mean().expect("no outcomes")
    }

    /// Fraction of trials that completed within the step cap.
    pub fn completion_rate(&self) -> f64 {
        self.acc.completion_rate()
    }

    /// `true` when every trial completed within the step cap.
    pub fn all_completed(&self) -> bool {
        self.acc.all_completed()
    }

    /// Total machine-steps the policy pointed at ineligible jobs.
    pub fn total_ineligible(&self) -> u64 {
        self.acc.total_ineligible()
    }

    /// Summary statistics of the makespan sample (`None` on zero trials).
    pub fn summary(&self) -> Option<Summary> {
        self.acc.summary()
    }

    /// Schema identifier stamped on [`EvalStats::to_json`] checkpoints.
    pub const CHECKPOINT_SCHEMA: &'static str = suu_core::schemas::SIM_EVALSTATS_V1;

    /// Serialize a resumable checkpoint: the accumulator snapshot plus
    /// everything [`Evaluator::extend_stats`] needs to continue the cell
    /// (master seed, trial count, engine configuration).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("schema", Self::CHECKPOINT_SCHEMA)
            .field("policy", self.policy.as_str())
            .field("trials", self.config.trials)
            .field("master_seed", self.config.master_seed)
            .field("batch", self.config.batch)
            .field(
                "exec",
                Json::obj()
                    .field("semantics", semantics_str(self.config.exec.semantics))
                    .field("engine", engine_str(self.config.exec.engine))
                    .field("max_steps", self.config.exec.max_steps),
            )
            .field("wall_clock_s", self.wall_clock.as_secs_f64())
            .field("accumulator", self.acc.to_json())
    }

    /// Restore a checkpoint produced by [`EvalStats::to_json`]. The
    /// restored accumulator is bitwise the saved one; `threads` is not
    /// part of the checkpoint (it never affects results) and comes back
    /// as `0` (all cores).
    pub fn from_json(json: &Json) -> Result<EvalStats, String> {
        match json.get("schema").and_then(Json::as_str) {
            Some(s) if s == Self::CHECKPOINT_SCHEMA => {}
            other => return Err(format!("unsupported checkpoint schema {other:?}")),
        }
        let u64_field = |key: &str| -> Result<u64, String> {
            json.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("checkpoint missing integer '{key}'"))
        };
        let exec_json = json.get("exec").ok_or("checkpoint missing 'exec'")?;
        let exec = ExecConfig {
            semantics: parse_semantics(
                exec_json
                    .get("semantics")
                    .and_then(Json::as_str)
                    .ok_or("checkpoint missing 'exec.semantics'")?,
            )?,
            engine: parse_engine(
                exec_json
                    .get("engine")
                    .and_then(Json::as_str)
                    .ok_or("checkpoint missing 'exec.engine'")?,
            )?,
            max_steps: exec_json
                .get("max_steps")
                .and_then(Json::as_u64)
                .ok_or("checkpoint missing 'exec.max_steps'")?,
        };
        let acc = OutcomeAccumulator::from_json(
            json.get("accumulator")
                .ok_or("checkpoint missing 'accumulator'")?,
        )?;
        let trials = u64_field("trials")? as usize;
        if acc.count() != trials as u64 {
            return Err("checkpoint trial count disagrees with accumulator".into());
        }
        Ok(EvalStats {
            policy: json
                .get("policy")
                .and_then(Json::as_str)
                .ok_or("checkpoint missing 'policy'")?
                .to_string(),
            config: EvalConfig {
                trials,
                master_seed: u64_field("master_seed")?,
                threads: 0,
                batch: u64_field("batch")? as usize,
                exec,
            },
            acc,
            wall_clock: Duration::from_secs_f64(
                json.get("wall_clock_s")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
            ),
        })
    }
}

fn semantics_str(s: Semantics) -> &'static str {
    match s {
        Semantics::Suu => "suu",
        Semantics::SuuStar => "suu-star",
    }
}

fn parse_semantics(s: &str) -> Result<Semantics, String> {
    match s {
        "suu" => Ok(Semantics::Suu),
        "suu-star" => Ok(Semantics::SuuStar),
        other => Err(format!("unknown semantics {other:?}")),
    }
}

fn engine_str(e: EngineKind) -> &'static str {
    match e {
        EngineKind::Dense => "dense",
        EngineKind::Events => "events",
    }
}

fn parse_engine(s: &str) -> Result<EngineKind, String> {
    match s {
        "dense" => Ok(EngineKind::Dense),
        "events" => Ok(EngineKind::Events),
        other => Err(format!("unknown engine {other:?}")),
    }
}

/// An adaptively-stopped evaluation: the streaming statistics plus why
/// the cell stopped growing.
#[derive(Debug, Clone)]
pub struct AdaptiveStats {
    /// The cell's statistics; `stats.config.trials` is the trials
    /// actually used.
    pub stats: EvalStats,
    /// Why sampling stopped.
    pub stop_reason: StopReason,
}

impl AdaptiveStats {
    /// Trials actually executed before stopping.
    pub fn trials_used(&self) -> u64 {
        self.stats.trials()
    }
}

/// A paired CRN comparison of two policies: Welford statistics of the
/// per-trial makespan difference `A − B` under shared trial seeds.
#[derive(Debug, Clone)]
pub struct PairedStats {
    /// Display name of policy A.
    pub policy_a: String,
    /// Display name of policy B.
    pub policy_b: String,
    /// Configuration the comparison ran under (`trials` = pairs used).
    pub config: EvalConfig,
    /// Per-trial difference accumulator.
    pub delta: PairedDelta,
    /// Why sampling stopped.
    pub stop_reason: StopReason,
    /// Wall-clock time for the whole comparison (both policies).
    pub wall_clock: Duration,
}

impl PairedStats {
    /// Paired trials executed.
    pub fn trials_used(&self) -> u64 {
        self.delta.count()
    }

    /// Mean per-trial difference `makespan_A − makespan_B` (`None` when
    /// empty).
    pub fn delta_mean(&self) -> Option<f64> {
        self.delta.mean()
    }

    /// 95% CI half-width of the mean difference (Student-t).
    pub fn delta_ci95(&self) -> Option<f64> {
        self.delta.ci95()
    }

    /// `true` when zero lies outside the difference CI.
    pub fn significant(&self) -> Option<bool> {
        self.delta.significant()
    }
}

/// The parallel trial runner. See the module docs for the determinism
/// contract.
#[derive(Debug, Clone, Copy, Default)]
pub struct Evaluator {
    /// Evaluation parameters.
    pub config: EvalConfig,
}

impl Evaluator {
    /// Evaluator over the given configuration.
    pub fn new(config: EvalConfig) -> Self {
        Evaluator { config }
    }

    /// Convenience: `trials` trials from `master_seed`, defaults otherwise.
    pub fn seeded(trials: usize, master_seed: u64) -> Self {
        Evaluator {
            config: EvalConfig {
                trials,
                master_seed,
                ..EvalConfig::default()
            },
        }
    }

    /// Builder-style thread override (`0` = all cores, `1` = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Builder-style engine-config override.
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.config.exec = exec;
        self
    }

    /// Builder-style batch-size override for the streaming paths.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.config.batch = batch;
        self
    }

    /// Effective batch size (`0` in the config means the default).
    fn batch_size(&self) -> usize {
        if self.config.batch == 0 {
            DEFAULT_BATCH
        } else {
            self.config.batch
        }
    }

    /// Seeds for the trials of chunk `chunk` of the range `lo..hi`
    /// (chunks partition the range into runs of `batch` consecutive
    /// indices), derived exactly as [`Evaluator::run_trial`] derives them
    /// — the foundation of the batched-vs-per-trial bitwise-equality
    /// guarantee. Trial seeds are keyed by absolute trial index, so *how*
    /// a range is chunked (or where a resumed range starts) never changes
    /// any trial's randomness.
    fn chunk_trials(&self, lo: usize, hi: usize, chunk: usize, batch: usize) -> Vec<BatchTrial> {
        let cfg = &self.config;
        let start = lo + chunk * batch;
        let end = (start + batch).min(hi);
        (start..end)
            .map(|k| BatchTrial {
                engine_seed: derive_seed(cfg.master_seed, k as u64, ENGINE_DOMAIN),
                policy_seed: Some(derive_seed(cfg.master_seed, k as u64, POLICY_DOMAIN)),
            })
            .collect()
    }

    /// Seeds of trials `lo..hi` as one batch — exactly the seeds every
    /// evaluation path derives for those trial indices, exposed so
    /// external harnesses (the bench binaries) can drive the engines
    /// directly while staying on the evaluator's randomness contract.
    pub fn trial_batch(&self, lo: usize, hi: usize) -> Vec<BatchTrial> {
        self.chunk_trials(lo, hi, 0, hi.saturating_sub(lo))
    }

    /// Run the policy produced by `make_policy` for every trial.
    ///
    /// `make_policy` is invoked once per worker thread; each trial reseeds
    /// and resets the worker's policy value, so construction cost (LP
    /// solves) is amortized without compromising determinism.
    pub fn run<F, P>(&self, inst: &SuuInstance, make_policy: F) -> EvalReport
    where
        F: Fn() -> P + Sync,
        P: Policy,
    {
        let cfg = self.config;
        let started = Instant::now();
        let name = std::sync::Mutex::new(None::<String>);

        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(cfg.threads)
            .build()
            .expect("thread pool");
        let outcomes: Vec<ExecOutcome> = pool.install(|| {
            (0..cfg.trials)
                .into_par_iter()
                .map_init(
                    || {
                        let policy = make_policy();
                        let mut slot = name.lock().expect("name lock");
                        if slot.is_none() {
                            *slot = Some(policy.name().to_string());
                        }
                        policy
                    },
                    |policy, k| self.run_trial(inst, policy, k as u64),
                )
                .collect()
        });

        EvalReport {
            policy: name
                .into_inner()
                .expect("name lock")
                .unwrap_or_else(|| "unnamed".to_string()),
            config: cfg,
            outcomes,
            wall_clock: started.elapsed(),
        }
    }

    /// Reference serial implementation: one policy value, trials in order
    /// on the calling thread. Exists so tests (and the perf harness) can
    /// check the parallel path reproduces it bitwise and outruns it.
    pub fn run_serial<F, P>(&self, inst: &SuuInstance, make_policy: F) -> EvalReport
    where
        F: Fn() -> P,
        P: Policy,
    {
        let cfg = self.config;
        let started = Instant::now();
        let mut policy = make_policy();
        let name = policy.name().to_string();
        let outcomes = (0..cfg.trials)
            .map(|k| self.run_trial(inst, &mut policy, k as u64))
            .collect();
        EvalReport {
            policy: name,
            config: cfg,
            outcomes,
            wall_clock: started.elapsed(),
        }
    }

    /// Build the spec through the registry and evaluate it.
    ///
    /// Construction failures surface before any trial runs; each worker
    /// thread builds its own policy instance from the same spec.
    pub fn run_spec(
        &self,
        registry: &PolicyRegistry,
        inst: &Arc<SuuInstance>,
        spec: &PolicySpec,
    ) -> Result<EvalReport, RegistryError> {
        let make_policy = probe_factory(registry, inst, spec)?;
        Ok(self.run(inst, make_policy))
    }

    /// Run every trial through the batched engine, collecting outcomes.
    ///
    /// Serial (one policy value on the calling thread), chunked in trial
    /// order. Buffers all outcomes — this is the *verification* spelling
    /// of the batched path, existing so differential tests and the bench
    /// harness can assert batched ≡ per-trial bitwise; production sweeps
    /// use the O(1)-memory [`Evaluator::run_stats`] instead.
    pub fn run_batched<F, P>(&self, inst: &SuuInstance, make_policy: F) -> EvalReport
    where
        F: FnOnce() -> P,
        P: Policy,
    {
        let cfg = self.config;
        let batch = self.batch_size();
        let started = Instant::now();
        let mut policy = make_policy();
        let name = policy.name().to_string();
        let mut runner = BatchRunner::new(inst, &cfg.exec);
        let mut outcomes = Vec::with_capacity(cfg.trials);
        for chunk in 0..cfg.trials.div_ceil(batch) {
            let trials = self.chunk_trials(0, cfg.trials, chunk, batch);
            outcomes.extend(runner.run(&mut policy, &trials));
        }
        EvalReport {
            policy: name,
            config: cfg,
            outcomes,
            wall_clock: started.elapsed(),
        }
    }

    /// Build the spec through the registry and run it batched (see
    /// [`Evaluator::run_batched`]).
    pub fn run_batched_spec(
        &self,
        registry: &PolicyRegistry,
        inst: &Arc<SuuInstance>,
        spec: &PolicySpec,
    ) -> Result<EvalReport, RegistryError> {
        let policy = registry.build(inst, spec)?;
        Ok(self.run_batched(inst, move || policy))
    }

    /// The default evaluation path: every trial through the batched
    /// engine, folded straight into an [`OutcomeAccumulator`] — peak
    /// memory is `O(threads · batch)` outcomes, independent of the trial
    /// count.
    ///
    /// Parallelism is a bounded pipeline: workers pull chunk indices from
    /// a shared counter and send `(index, outcomes)` through a bounded
    /// channel; the calling thread folds chunks strictly in index order.
    /// The accumulator therefore sees the trials in trial order no matter
    /// how many workers run, so the statistics (including the
    /// order-sensitive P² sketches) are **bitwise identical at any thread
    /// count** — the same determinism contract as [`Evaluator::run`].
    pub fn run_stats<F, P>(&self, inst: &SuuInstance, make_policy: F) -> EvalStats
    where
        F: Fn() -> P + Sync,
        P: Policy,
    {
        let started = Instant::now();
        let mut acc = OutcomeAccumulator::new();
        let policy = self.stream_range(inst, &make_policy, &mut acc, 0, self.config.trials);
        EvalStats {
            policy,
            config: self.config,
            acc,
            wall_clock: started.elapsed(),
        }
    }

    /// Extend a saved cell from its current trial count to
    /// `target_trials`, folding trials `n..target` into its accumulator.
    ///
    /// Because trial randomness is keyed by absolute trial index and the
    /// accumulator sees trials strictly in index order, the result is
    /// **bitwise identical** — moments *and* P² sketch state — to a fresh
    /// `target_trials` run at any thread count (tested in
    /// `tests/adaptive.rs`). The caller must resume with the instance,
    /// policy, master seed and semantics the cell was started with
    /// (master seed, semantics and step-cap mismatches are caught here;
    /// the engine kind is result-neutral by the differential guarantee;
    /// the instance/policy are the caller's contract, exactly as for a
    /// fresh run). No-op when the cell already has `target_trials`
    /// trials.
    pub fn extend_stats<F, P>(
        &self,
        inst: &SuuInstance,
        make_policy: F,
        stats: &mut EvalStats,
        target_trials: usize,
    ) where
        F: Fn() -> P + Sync,
        P: Policy,
    {
        self.assert_resumable(stats);
        let done = stats.trials() as usize;
        if target_trials <= done {
            return;
        }
        let started = Instant::now();
        self.stream_range(inst, &make_policy, &mut stats.acc, done, target_trials);
        stats.config.trials = target_trials;
        stats.wall_clock += started.elapsed();
    }

    /// Build the spec through the registry and extend the cell (see
    /// [`Evaluator::extend_stats`]).
    pub fn extend_stats_spec(
        &self,
        registry: &PolicyRegistry,
        inst: &Arc<SuuInstance>,
        spec: &PolicySpec,
        stats: &mut EvalStats,
        target_trials: usize,
    ) -> Result<(), RegistryError> {
        let make_policy = probe_factory(registry, inst, spec)?;
        self.extend_stats(inst, make_policy, stats, target_trials);
        Ok(())
    }

    /// Grow a cell until `precision` says stop: trials are added in
    /// deterministic rounds (the round schedule grows 1.5× from the
    /// rule's `min_trials`, capped at `max_trials` — geometric, so the
    /// stopping-check cost stays logarithmic, but gentle enough that a
    /// cell overshoots its stopping point by at most ~50%), with a
    /// stopping check after each round. Same master seed ⇒ same
    /// statistics at every check ⇒ same stopping point, at any thread
    /// count.
    pub fn run_adaptive<F, P>(
        &self,
        inst: &SuuInstance,
        make_policy: F,
        precision: Precision,
    ) -> AdaptiveStats
    where
        F: Fn() -> P + Sync,
        P: Policy,
    {
        let started = Instant::now();
        let mut acc = OutcomeAccumulator::new();
        let mut done = 0usize;
        let (name, stop_reason) =
            self.adaptive_rounds(inst, &make_policy, &mut acc, &mut done, precision);
        let mut config = self.config;
        config.trials = done;
        AdaptiveStats {
            stats: EvalStats {
                policy: name.unwrap_or_else(|| "unnamed".to_string()),
                config,
                acc,
                wall_clock: started.elapsed(),
            },
            stop_reason,
        }
    }

    /// Resume a saved cell (e.g. an [`EvalStats::from_json`] checkpoint)
    /// and keep growing it until `precision` says stop — the sequential
    /// half of [`Evaluator::extend_stats`]: the round schedule and
    /// stopping checks are exactly [`Evaluator::run_adaptive`]'s, but
    /// execution starts from the cell's current trial count instead of
    /// zero.
    ///
    /// Whatever trial count `N` the resumed cell ends at, its moments and
    /// P² sketch state are **bitwise identical** to a fresh `N`-trial run
    /// (the [`Evaluator::extend_stats`] guarantee). When the cell's whole
    /// history was grown under the same round discipline (same
    /// `min_trials`, as the serve daemon arranges), the *stopping point*
    /// itself also matches a cold [`Evaluator::run_adaptive`] at the
    /// tighter target: every checkpoint the cold run visits below the
    /// cell's current count already failed a looser-or-equal check, so
    /// neither run stops there. A cell grown under a different discipline
    /// (say a fixed budget) still resumes correctly but may stop at a
    /// different count than a cold adaptive run would.
    ///
    /// The same resume preconditions as [`Evaluator::extend_stats`] apply
    /// (asserted: master seed, semantics, step cap; caller contract:
    /// instance and policy).
    pub fn resume_adaptive<F, P>(
        &self,
        inst: &SuuInstance,
        make_policy: F,
        mut stats: EvalStats,
        precision: Precision,
    ) -> AdaptiveStats
    where
        F: Fn() -> P + Sync,
        P: Policy,
    {
        self.assert_resumable(&stats);
        let started = Instant::now();
        let mut done = stats.trials() as usize;
        let (name, stop_reason) =
            self.adaptive_rounds(inst, &make_policy, &mut stats.acc, &mut done, precision);
        if stats.policy.is_empty() {
            stats.policy = name.unwrap_or_else(|| "unnamed".to_string());
        }
        stats.config.trials = done;
        stats.wall_clock += started.elapsed();
        AdaptiveStats { stats, stop_reason }
    }

    /// Build the spec through the registry and resume the cell
    /// adaptively (see [`Evaluator::resume_adaptive`]).
    pub fn resume_adaptive_spec(
        &self,
        registry: &PolicyRegistry,
        inst: &Arc<SuuInstance>,
        spec: &PolicySpec,
        stats: EvalStats,
        precision: Precision,
    ) -> Result<AdaptiveStats, RegistryError> {
        let make_policy = probe_factory(registry, inst, spec)?;
        Ok(self.resume_adaptive(inst, make_policy, stats, precision))
    }

    /// The shared sequential-stopping loop: grow `acc` from `done` trials
    /// in deterministic 1.5× rounds anchored at `precision.min_trials()`,
    /// checking the stopping rule after each round. The schedule is a
    /// pure function of the current count, so resumed and cold runs walk
    /// identical checkpoints once their counts coincide.
    fn adaptive_rounds<F, P>(
        &self,
        inst: &SuuInstance,
        make_policy: &F,
        acc: &mut OutcomeAccumulator,
        done: &mut usize,
        precision: Precision,
    ) -> (Option<String>, StopReason)
    where
        F: Fn() -> P + Sync,
        P: Policy,
    {
        let max = precision.max_trials();
        let mut target = precision.min_trials().min(max);
        let mut name: Option<String> = None;
        let stop_reason = loop {
            if target > *done {
                let n = self.stream_range(inst, make_policy, acc, *done, target);
                name.get_or_insert(n);
                *done = target;
            }
            let (mean, ci95) = match acc.summary() {
                Some(s) => (s.mean, s.ci95),
                None => (0.0, f64::INFINITY),
            };
            if let Some(reason) = precision.check(*done, mean, ci95) {
                break reason;
            }
            target = done.saturating_add((*done / 2).max(1)).min(max);
        };
        (name, stop_reason)
    }

    /// Shared resume precondition checks (see [`Evaluator::extend_stats`]).
    fn assert_resumable(&self, stats: &EvalStats) {
        assert_eq!(
            stats.config.master_seed, self.config.master_seed,
            "resume must use the master seed the cell was started with"
        );
        assert_eq!(
            stats.config.exec.semantics, self.config.exec.semantics,
            "resume must use the semantics the cell was started with"
        );
        assert_eq!(
            stats.config.exec.max_steps, self.config.exec.max_steps,
            "resume must use the step cap the cell was started with"
        );
    }

    /// Build the spec through the registry and evaluate it adaptively
    /// (see [`Evaluator::run_adaptive`]).
    pub fn run_adaptive_spec(
        &self,
        registry: &PolicyRegistry,
        inst: &Arc<SuuInstance>,
        spec: &PolicySpec,
        precision: Precision,
    ) -> Result<AdaptiveStats, RegistryError> {
        let make_policy = probe_factory(registry, inst, spec)?;
        Ok(self.run_adaptive(inst, make_policy, precision))
    }

    /// Compare two policies pairwise on **common random numbers**: each
    /// paired trial runs both policies from the *same* engine seed (the
    /// seed the marginal cells use for that trial index), and the Welford
    /// accumulator tracks the per-trial difference `A − B` — under CRN
    /// its variance is what should drive the budget, so `precision`'s CI
    /// rule is applied to the **difference**, not to either mean.
    ///
    /// Runs on the calling thread, chunk by chunk (both policies per
    /// chunk, deltas folded in trial order) — paired cells are usually an
    /// order of magnitude cheaper than the marginal cells that precede
    /// them, and serial execution keeps the difference stream trivially
    /// deterministic.
    pub fn run_paired<FA, PA, FB, PB>(
        &self,
        inst: &SuuInstance,
        make_a: FA,
        make_b: FB,
        precision: Precision,
    ) -> PairedStats
    where
        FA: FnOnce() -> PA,
        PA: Policy,
        FB: FnOnce() -> PB,
        PB: Policy,
    {
        let cfg = self.config;
        let batch = self.batch_size();
        let started = Instant::now();
        let mut a = make_a();
        let mut b = make_b();
        let (name_a, name_b) = (a.name().to_string(), b.name().to_string());
        // One warm runner per policy for the whole comparison: decision
        // caches are per-policy, scratch is reused across rounds.
        let mut runner_a = BatchRunner::new(inst, &cfg.exec);
        let mut runner_b = BatchRunner::new(inst, &cfg.exec);
        let mut delta = PairedDelta::new();
        let max = precision.max_trials();
        let mut target = precision.min_trials().min(max);
        let mut done = 0usize;
        let stop_reason = loop {
            for chunk in 0..(target - done).div_ceil(batch.max(1)) {
                let trials = self.chunk_trials(done, target, chunk, batch);
                let out_a = runner_a.run(&mut a, &trials);
                let out_b = runner_b.run(&mut b, &trials);
                for (oa, ob) in out_a.iter().zip(&out_b) {
                    delta.push(oa.makespan as f64, ob.makespan as f64);
                }
            }
            done = target;
            let mean = delta.mean().unwrap_or(0.0);
            let ci95 = delta.ci95().unwrap_or(f64::INFINITY);
            if let Some(reason) = precision.check(done, mean, ci95) {
                break reason;
            }
            target = done.saturating_add((done / 2).max(1)).min(max);
        };
        let mut config = cfg;
        config.trials = done;
        PairedStats {
            policy_a: name_a,
            policy_b: name_b,
            config,
            delta,
            stop_reason,
            wall_clock: started.elapsed(),
        }
    }

    /// Build both specs through the registry and compare them paired
    /// (see [`Evaluator::run_paired`]).
    pub fn run_paired_spec(
        &self,
        registry: &PolicyRegistry,
        inst: &Arc<SuuInstance>,
        spec_a: &PolicySpec,
        spec_b: &PolicySpec,
        precision: Precision,
    ) -> Result<PairedStats, RegistryError> {
        let a = registry.build(inst, spec_a)?;
        let b = registry.build(inst, spec_b)?;
        Ok(self.run_paired(inst, move || a, move || b, precision))
    }

    /// The streaming core: execute trials `lo..hi` through the batched
    /// engine and fold them into `acc` strictly in trial order, returning
    /// the policy's display name.
    fn stream_range<F, P>(
        &self,
        inst: &SuuInstance,
        make_policy: &F,
        acc: &mut OutcomeAccumulator,
        lo: usize,
        hi: usize,
    ) -> String
    where
        F: Fn() -> P + Sync,
        P: Policy,
    {
        let cfg = self.config;
        let batch = self.batch_size();
        let chunks = hi.saturating_sub(lo).div_ceil(batch);
        let workers = {
            let t = if cfg.threads == 0 {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            } else {
                cfg.threads
            };
            t.min(chunks.max(1))
        };

        let policy_name;
        if workers <= 1 {
            let mut policy = make_policy();
            policy_name = policy.name().to_string();
            let mut runner = BatchRunner::new(inst, &cfg.exec);
            for chunk in 0..chunks {
                let trials = self.chunk_trials(lo, hi, chunk, batch);
                for outcome in runner.run(&mut policy, &trials) {
                    acc.push(&outcome);
                }
            }
        } else {
            use std::sync::atomic::{AtomicUsize, Ordering};
            let name = std::sync::Mutex::new(None::<String>);
            let next = AtomicUsize::new(0);
            // Chunks folded into the accumulator so far. Workers refuse to
            // *execute* a chunk more than `window` ahead of it, which is
            // what actually bounds the chunks in flight (the channel alone
            // cannot: the fold loop drains it eagerly while waiting for
            // the next in-order chunk, so a slow early chunk would
            // otherwise let the reorder buffer grow to O(trials)).
            let folded = AtomicUsize::new(0);
            let window = 2 * workers;
            let (tx, rx) = std::sync::mpsc::sync_channel::<(usize, Vec<ExecOutcome>)>(window);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let (next, folded, name, make_policy) = (&next, &folded, &name, &make_policy);
                    scope.spawn(move || {
                        let mut policy = make_policy();
                        {
                            let mut slot = name.lock().expect("name lock");
                            if slot.is_none() {
                                *slot = Some(policy.name().to_string());
                            }
                        }
                        // Worker-local runner: decision cache and SoA
                        // scratch stay warm across every chunk this
                        // worker claims.
                        let mut runner = BatchRunner::new(inst, &cfg.exec);
                        loop {
                            let chunk = next.fetch_add(1, Ordering::Relaxed);
                            if chunk >= chunks {
                                break;
                            }
                            // Backpressure: chunks are claimed in index
                            // order, so the worker holding the next
                            // in-order chunk is always within the window
                            // and progresses — no deadlock.
                            while chunk >= folded.load(Ordering::Acquire) + window {
                                std::thread::yield_now();
                            }
                            let trials = self.chunk_trials(lo, hi, chunk, batch);
                            let outcomes = runner.run(&mut policy, &trials);
                            if tx.send((chunk, outcomes)).is_err() {
                                break; // receiver gone: nothing left to do
                            }
                        }
                    });
                }
                drop(tx);
                // Fold strictly in chunk order; out-of-order arrivals wait
                // in `pending`, bounded by the execution window above.
                let mut pending = std::collections::BTreeMap::new();
                let mut want = 0usize;
                for (chunk, outcomes) in rx {
                    pending.insert(chunk, outcomes);
                    while let Some(outcomes) = pending.remove(&want) {
                        for outcome in &outcomes {
                            acc.push(outcome);
                        }
                        want += 1;
                        folded.store(want, Ordering::Release);
                    }
                }
                debug_assert!(pending.is_empty(), "chunk lost in the pipeline");
            });
            policy_name = name
                .into_inner()
                .expect("name lock")
                .unwrap_or_else(|| "unnamed".to_string());
        }
        policy_name
    }

    /// Build the spec through the registry and evaluate it on the
    /// streaming path (see [`Evaluator::run_stats`]).
    ///
    /// Construction failures surface before any trial runs; as in
    /// [`Evaluator::run_spec`], the probe policy is handed to the first
    /// worker so expensive construction is not paid twice.
    pub fn run_stats_spec(
        &self,
        registry: &PolicyRegistry,
        inst: &Arc<SuuInstance>,
        spec: &PolicySpec,
    ) -> Result<EvalStats, RegistryError> {
        let make_policy = probe_factory(registry, inst, spec)?;
        Ok(self.run_stats(inst, make_policy))
    }

    /// One trial, fully determined by `(master_seed, trial index)`.
    fn run_trial<P: Policy>(&self, inst: &SuuInstance, policy: &mut P, k: u64) -> ExecOutcome {
        let cfg = &self.config;
        policy.reseed(derive_seed(cfg.master_seed, k, POLICY_DOMAIN));
        execute(
            inst,
            policy,
            &cfg.exec,
            derive_seed(cfg.master_seed, k, ENGINE_DOMAIN),
        )
    }
}

/// The `*_spec` entry points' shared policy factory: build the spec once
/// up front — failing fast, with the real error, on the calling thread —
/// and hand that probe instance to the first worker so expensive
/// construction (LP solves, the exact-opt DP) is not paid twice; any
/// further worker rebuilds from the same spec.
fn probe_factory<'a>(
    registry: &'a PolicyRegistry,
    inst: &'a Arc<SuuInstance>,
    spec: &'a PolicySpec,
) -> Result<impl Fn() -> Box<dyn Policy> + Sync + 'a, RegistryError> {
    let probe = std::sync::Mutex::new(Some(registry.build(inst, spec)?));
    Ok(move || {
        probe.lock().expect("probe lock").take().unwrap_or_else(|| {
            registry
                .build(inst, spec)
                .expect("spec built once already; instance and spec are unchanged")
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Assignment, Decision, StateView};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use suu_core::{workload, JobId, Precedence};

    /// Gang policy with *internal* randomness: occasionally idles one
    /// machine based on its own RNG — a miniature of SUU-C's delays,
    /// to prove `reseed` pins policy randomness per trial. Its output
    /// varies every step, so it declares per-step wake-ups.
    struct JitteryGang {
        rng: StdRng,
    }

    impl JitteryGang {
        fn new() -> Self {
            JitteryGang {
                rng: StdRng::seed_from_u64(0),
            }
        }
    }

    impl Policy for JitteryGang {
        fn name(&self) -> &str {
            "jittery-gang"
        }
        fn reset(&mut self) {}
        fn reseed(&mut self, seed: u64) {
            self.rng = StdRng::seed_from_u64(seed);
        }
        fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
            use rand::Rng;
            let target = view.eligible.first().map(JobId);
            for i in 0..view.m {
                if !self.rng.random_bool(0.2) {
                    out.set_slot(i, target);
                }
            }
            Decision::step(view)
        }
    }

    fn outcomes_with_threads(threads: usize) -> Vec<u64> {
        let inst = workload::homogeneous(3, 6, 0.5, Precedence::Independent);
        Evaluator::seeded(64, 99)
            .with_threads(threads)
            .run(&inst, JitteryGang::new)
            .outcomes
            .iter()
            .map(|o| o.makespan)
            .collect()
    }

    #[test]
    fn identical_outcomes_for_any_thread_count() {
        let reference = outcomes_with_threads(1);
        for threads in [2, 3, 8] {
            assert_eq!(
                outcomes_with_threads(threads),
                reference,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn parallel_matches_serial_reference() {
        let inst = workload::homogeneous(2, 5, 0.6, Precedence::Independent);
        let eval = Evaluator::seeded(50, 7);
        let par: Vec<u64> = eval
            .run(&inst, JitteryGang::new)
            .outcomes
            .iter()
            .map(|o| o.makespan)
            .collect();
        let ser: Vec<u64> = eval
            .run_serial(&inst, JitteryGang::new)
            .outcomes
            .iter()
            .map(|o| o.makespan)
            .collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn different_master_seeds_differ() {
        let inst = workload::homogeneous(2, 6, 0.7, Precedence::Independent);
        let a = Evaluator::seeded(40, 1).run(&inst, JitteryGang::new);
        let b = Evaluator::seeded(40, 2).run(&inst, JitteryGang::new);
        assert_ne!(
            a.outcomes.iter().map(|o| o.makespan).collect::<Vec<_>>(),
            b.outcomes.iter().map(|o| o.makespan).collect::<Vec<_>>()
        );
    }

    #[test]
    fn derive_seed_separates_domains_and_indices() {
        let s = derive_seed(5, 0, ENGINE_DOMAIN);
        assert_ne!(s, derive_seed(5, 0, POLICY_DOMAIN));
        assert_ne!(s, derive_seed(5, 1, ENGINE_DOMAIN));
        assert_ne!(s, derive_seed(6, 0, ENGINE_DOMAIN));
    }

    #[test]
    fn report_accessors() {
        let inst = workload::deterministic(2, 4, Precedence::Independent);
        let report = Evaluator::seeded(10, 3).run(&inst, JitteryGang::new);
        assert_eq!(report.policy, "jittery-gang");
        assert_eq!(report.outcomes.len(), 10);
        assert!(report.all_completed());
        assert_eq!(report.completion_rate(), 1.0);
        assert_eq!(report.total_ineligible(), 0);
        assert!(report.mean_makespan() >= 2.0);
        assert_eq!(report.summary().expect("nonempty").count, 10);
        let stats = report.to_stats();
        assert_eq!(stats.trials(), 10);
        assert_eq!(stats.policy, "jittery-gang");
        assert!(stats.all_completed());
    }

    /// Once a cell outgrows the 512-sample exact window its accumulator
    /// collapses to quantile sketches and can no longer be merged
    /// ([`crate::stats::MergeError::SketchCollapsed`]) — the supported
    /// growth route is the extend/replay path. Refine a cell across two
    /// checkpointed rounds that straddle the collapse and demand the
    /// final state is bitwise identical to a cold run at that count.
    #[test]
    fn sketch_collapsed_cell_refined_in_rounds_matches_cold_run() {
        let inst = workload::homogeneous(3, 6, 0.5, Precedence::Independent);
        let eval = Evaluator::seeded(400, 99);
        let mut warm = eval.run_stats(&inst, JitteryGang::new);

        // Round 1: 400 → 600, crossing the exact-sample cap.
        eval.extend_stats(&inst, JitteryGang::new, &mut warm, 600);
        let checkpoint = warm.to_json();
        let restored = EvalStats::from_json(&checkpoint).expect("restore");
        assert_eq!(restored.trials(), 600);
        assert!(
            checkpoint
                .get("accumulator")
                .and_then(|a| a.get("median_sketch"))
                .is_some(),
            "600 > 512 trials must have collapsed to sketches"
        );
        let mut probe = OutcomeAccumulator::new();
        assert_eq!(
            probe.merge(&restored.acc),
            Err(crate::stats::MergeError::SketchCollapsed { samples: 600 })
        );

        // Round 2: resume the restored checkpoint 600 → 780.
        let mut warm = restored;
        eval.extend_stats(&inst, JitteryGang::new, &mut warm, 780);

        let cold = Evaluator::seeded(780, 99).run_stats(&inst, JitteryGang::new);
        assert_eq!(warm.trials(), 780);
        assert_eq!(
            warm.acc.to_json().to_canonical(),
            cold.acc.to_json().to_canonical(),
            "refined-in-rounds cell must be bitwise identical to a cold run"
        );
    }
}
