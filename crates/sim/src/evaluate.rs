//! The parallel, seed-deterministic Monte-Carlo evaluator.
//!
//! One [`Evaluator`] replaces every serial (and the old crossbeam-channel)
//! `run_trials` loop in the workspace. Trials fan out across a worker pool
//! (`rayon` data-parallel iterators with worker-local policy state, so an
//! expensive LP-built policy is constructed once per worker, not once per
//! trial) while remaining **bitwise deterministic**:
//!
//! * trial `k`'s engine randomness is the seed
//!   `derive_seed(master_seed, k, ENGINE_DOMAIN)`, from which the engine
//!   derives counter-based *per-job* streams (so the dense and event
//!   engines consume identical randomness — see [`crate::engine`]);
//! * trial `k`'s *policy-internal* randomness (e.g. `SUU-C`'s Theorem-7
//!   start delays) is pinned by calling [`crate::Policy::reseed`] with
//!   `derive_seed(master_seed, k, POLICY_DOMAIN)` before execution.
//!
//! Nothing a worker thread did before a trial can leak into it, so the
//! outcome vector is a pure function of `(instance, policy spec,
//! master_seed, trials)` — identical on 1 thread or 64. The old
//! `base_seed + k` scheme is replaced by a SplitMix64 mix so that nearby
//! master seeds do not share trial streams.

use crate::engine::{execute, ExecConfig, ExecOutcome};
use crate::policy::Policy;
use crate::registry::{PolicyRegistry, PolicySpec, RegistryError};
use crate::stats::{summarize, Summary};
use rayon::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};
use suu_core::SuuInstance;

/// Domain tag for engine (job-outcome) randomness.
const ENGINE_DOMAIN: u64 = 0x45;
/// Domain tag for policy-internal randomness.
const POLICY_DOMAIN: u64 = 0x50;

/// Statistically independent 64-bit seed for `(master, index, domain)` —
/// a SplitMix64 finalization over the mixed triple.
pub fn derive_seed(master: u64, index: u64, domain: u64) -> u64 {
    let mut z = master
        ^ domain.wrapping_mul(0xA076_1D64_78BD_642F)
        ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Evaluation parameters.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Number of independent trials.
    pub trials: usize,
    /// Root of every trial's randomness.
    pub master_seed: u64,
    /// Worker threads (`0` = one per available core, `1` = serial).
    pub threads: usize,
    /// Engine configuration shared by all trials.
    pub exec: ExecConfig,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            trials: 100,
            master_seed: 0x5EED,
            threads: 0,
            exec: ExecConfig::default(),
        }
    }
}

/// What an evaluation produced, plus how long it took.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Display name of the evaluated policy.
    pub policy: String,
    /// Configuration the evaluation ran under.
    pub config: EvalConfig,
    /// Per-trial outcomes, in trial order.
    pub outcomes: Vec<ExecOutcome>,
    /// Wall-clock time for the whole batch.
    pub wall_clock: Duration,
}

impl EvalReport {
    /// Makespans as `f64`s, in trial order.
    pub fn makespans(&self) -> Vec<f64> {
        self.outcomes.iter().map(|o| o.makespan as f64).collect()
    }

    /// Mean makespan. Panics on zero trials.
    pub fn mean_makespan(&self) -> f64 {
        assert!(!self.outcomes.is_empty(), "no outcomes");
        self.outcomes.iter().map(|o| o.makespan as f64).sum::<f64>() / self.outcomes.len() as f64
    }

    /// Fraction of trials that completed within the step cap.
    pub fn completion_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.completed).count() as f64 / self.outcomes.len() as f64
    }

    /// `true` when every trial completed within the step cap.
    pub fn all_completed(&self) -> bool {
        self.outcomes.iter().all(|o| o.completed)
    }

    /// Total machine-steps the policy pointed at ineligible jobs (schedule
    /// bugs; the paper forbids them).
    pub fn total_ineligible(&self) -> u64 {
        self.outcomes.iter().map(|o| o.ineligible_assignments).sum()
    }

    /// Summary statistics of the makespan sample.
    pub fn summary(&self) -> Summary {
        summarize(&self.makespans())
    }
}

/// The parallel trial runner. See the module docs for the determinism
/// contract.
#[derive(Debug, Clone, Copy, Default)]
pub struct Evaluator {
    /// Evaluation parameters.
    pub config: EvalConfig,
}

impl Evaluator {
    /// Evaluator over the given configuration.
    pub fn new(config: EvalConfig) -> Self {
        Evaluator { config }
    }

    /// Convenience: `trials` trials from `master_seed`, defaults otherwise.
    pub fn seeded(trials: usize, master_seed: u64) -> Self {
        Evaluator {
            config: EvalConfig {
                trials,
                master_seed,
                ..EvalConfig::default()
            },
        }
    }

    /// Builder-style thread override (`0` = all cores, `1` = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Builder-style engine-config override.
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.config.exec = exec;
        self
    }

    /// Run the policy produced by `make_policy` for every trial.
    ///
    /// `make_policy` is invoked once per worker thread; each trial reseeds
    /// and resets the worker's policy value, so construction cost (LP
    /// solves) is amortized without compromising determinism.
    pub fn run<F, P>(&self, inst: &SuuInstance, make_policy: F) -> EvalReport
    where
        F: Fn() -> P + Sync,
        P: Policy,
    {
        let cfg = self.config;
        let started = Instant::now();
        let name = std::sync::Mutex::new(None::<String>);

        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(cfg.threads)
            .build()
            .expect("thread pool");
        let outcomes: Vec<ExecOutcome> = pool.install(|| {
            (0..cfg.trials)
                .into_par_iter()
                .map_init(
                    || {
                        let policy = make_policy();
                        let mut slot = name.lock().expect("name lock");
                        if slot.is_none() {
                            *slot = Some(policy.name().to_string());
                        }
                        policy
                    },
                    |policy, k| self.run_trial(inst, policy, k as u64),
                )
                .collect()
        });

        EvalReport {
            policy: name
                .into_inner()
                .expect("name lock")
                .unwrap_or_else(|| "unnamed".to_string()),
            config: cfg,
            outcomes,
            wall_clock: started.elapsed(),
        }
    }

    /// Reference serial implementation: one policy value, trials in order
    /// on the calling thread. Exists so tests (and the perf harness) can
    /// check the parallel path reproduces it bitwise and outruns it.
    pub fn run_serial<F, P>(&self, inst: &SuuInstance, make_policy: F) -> EvalReport
    where
        F: Fn() -> P,
        P: Policy,
    {
        let cfg = self.config;
        let started = Instant::now();
        let mut policy = make_policy();
        let name = policy.name().to_string();
        let outcomes = (0..cfg.trials)
            .map(|k| self.run_trial(inst, &mut policy, k as u64))
            .collect();
        EvalReport {
            policy: name,
            config: cfg,
            outcomes,
            wall_clock: started.elapsed(),
        }
    }

    /// Build the spec through the registry and evaluate it.
    ///
    /// Construction failures surface before any trial runs; each worker
    /// thread builds its own policy instance from the same spec.
    pub fn run_spec(
        &self,
        registry: &PolicyRegistry,
        inst: &Arc<SuuInstance>,
        spec: &PolicySpec,
    ) -> Result<EvalReport, RegistryError> {
        // Fail fast (and with the real error) on the calling thread; the
        // probe is handed to the first worker so expensive construction
        // (LP solves, the exact-opt DP) is not paid twice.
        let probe = std::sync::Mutex::new(Some(registry.build(inst, spec)?));
        let report = self.run(inst, || {
            probe.lock().expect("probe lock").take().unwrap_or_else(|| {
                registry
                    .build(inst, spec)
                    .expect("spec built once already; instance and spec are unchanged")
            })
        });
        Ok(report)
    }

    /// One trial, fully determined by `(master_seed, trial index)`.
    fn run_trial<P: Policy>(&self, inst: &SuuInstance, policy: &mut P, k: u64) -> ExecOutcome {
        let cfg = &self.config;
        policy.reseed(derive_seed(cfg.master_seed, k, POLICY_DOMAIN));
        execute(
            inst,
            policy,
            &cfg.exec,
            derive_seed(cfg.master_seed, k, ENGINE_DOMAIN),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Assignment, Decision, StateView};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use suu_core::{workload, JobId, Precedence};

    /// Gang policy with *internal* randomness: occasionally idles one
    /// machine based on its own RNG — a miniature of SUU-C's delays,
    /// to prove `reseed` pins policy randomness per trial. Its output
    /// varies every step, so it declares per-step wake-ups.
    struct JitteryGang {
        rng: StdRng,
    }

    impl JitteryGang {
        fn new() -> Self {
            JitteryGang {
                rng: StdRng::seed_from_u64(0),
            }
        }
    }

    impl Policy for JitteryGang {
        fn name(&self) -> &str {
            "jittery-gang"
        }
        fn reset(&mut self) {}
        fn reseed(&mut self, seed: u64) {
            self.rng = StdRng::seed_from_u64(seed);
        }
        fn decide(&mut self, view: &StateView<'_>, out: &mut Assignment) -> Decision {
            use rand::Rng;
            let target = view.eligible.first().map(JobId);
            for i in 0..view.m {
                if !self.rng.random_bool(0.2) {
                    out.set_slot(i, target);
                }
            }
            Decision::step(view)
        }
    }

    fn outcomes_with_threads(threads: usize) -> Vec<u64> {
        let inst = workload::homogeneous(3, 6, 0.5, Precedence::Independent);
        Evaluator::seeded(64, 99)
            .with_threads(threads)
            .run(&inst, JitteryGang::new)
            .outcomes
            .iter()
            .map(|o| o.makespan)
            .collect()
    }

    #[test]
    fn identical_outcomes_for_any_thread_count() {
        let reference = outcomes_with_threads(1);
        for threads in [2, 3, 8] {
            assert_eq!(
                outcomes_with_threads(threads),
                reference,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn parallel_matches_serial_reference() {
        let inst = workload::homogeneous(2, 5, 0.6, Precedence::Independent);
        let eval = Evaluator::seeded(50, 7);
        let par: Vec<u64> = eval
            .run(&inst, JitteryGang::new)
            .outcomes
            .iter()
            .map(|o| o.makespan)
            .collect();
        let ser: Vec<u64> = eval
            .run_serial(&inst, JitteryGang::new)
            .outcomes
            .iter()
            .map(|o| o.makespan)
            .collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn different_master_seeds_differ() {
        let inst = workload::homogeneous(2, 6, 0.7, Precedence::Independent);
        let a = Evaluator::seeded(40, 1).run(&inst, JitteryGang::new);
        let b = Evaluator::seeded(40, 2).run(&inst, JitteryGang::new);
        assert_ne!(
            a.outcomes.iter().map(|o| o.makespan).collect::<Vec<_>>(),
            b.outcomes.iter().map(|o| o.makespan).collect::<Vec<_>>()
        );
    }

    #[test]
    fn derive_seed_separates_domains_and_indices() {
        let s = derive_seed(5, 0, ENGINE_DOMAIN);
        assert_ne!(s, derive_seed(5, 0, POLICY_DOMAIN));
        assert_ne!(s, derive_seed(5, 1, ENGINE_DOMAIN));
        assert_ne!(s, derive_seed(6, 0, ENGINE_DOMAIN));
    }

    #[test]
    fn report_accessors() {
        let inst = workload::deterministic(2, 4, Precedence::Independent);
        let report = Evaluator::seeded(10, 3).run(&inst, JitteryGang::new);
        assert_eq!(report.policy, "jittery-gang");
        assert_eq!(report.outcomes.len(), 10);
        assert!(report.all_completed());
        assert_eq!(report.completion_rate(), 1.0);
        assert_eq!(report.total_ineligible(), 0);
        assert!(report.mean_makespan() >= 2.0);
        assert_eq!(report.summary().count, 10);
    }
}
